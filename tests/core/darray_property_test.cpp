// Property-based tests: randomized workloads whose final state is
// predictable, checked against a reference model.
//
//  - Elements in "set mode" are written only by their designated node; the
//    last write wins and is globally visible.
//  - Elements in "apply mode" receive commutative adds from every node; the
//    final value must equal the total regardless of interleaving, eviction,
//    or flush timing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

void add_u64(uint64_t& a, uint64_t v) { a += v; }

struct PropertyParam {
  uint32_t nodes;
  uint32_t chunk_elems;
  uint32_t cachelines;  // small values force eviction/writeback mid-run
  uint64_t elems;
  uint64_t ops_per_node;
};

class DArrayProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(DArrayProperty, RandomisedMixedWorkloadConvergesToModel) {
  const PropertyParam p = GetParam();
  rt::Cluster cluster(small_cfg(p.nodes, p.chunk_elems, p.cachelines));
  auto arr = DArray<uint64_t>::create(cluster, p.elems);
  const auto add = arr.register_op(&add_u64, 0);

  // element i: mode = set (owner node i % nodes) when i is even, else apply.
  auto is_set_mode = [](uint64_t i) { return i % 2 == 0; };

  // Reference: per-node op streams are deterministic (seeded by node id).
  std::vector<uint64_t> expected(p.elems, 0);
  std::vector<uint64_t> expected_adds(p.elems, 0);
  for (uint32_t n = 0; n < p.nodes; ++n) {
    Xoshiro256 rng(9000 + n);
    for (uint64_t k = 0; k < p.ops_per_node; ++k) {
      const uint64_t i = rng.next_below(p.elems);
      const uint64_t val = rng.next();
      if (is_set_mode(i)) {
        if (i % p.nodes == n) expected[i] = val;  // owner's last write wins
      } else {
        expected_adds[i] += val % 100;
      }
    }
  }

  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    Xoshiro256 rng(9000 + n);
    for (uint64_t k = 0; k < p.ops_per_node; ++k) {
      const uint64_t i = rng.next_below(p.elems);
      const uint64_t val = rng.next();
      if (is_set_mode(i)) {
        if (i % p.nodes == n)
          arr.set(i, val);
        else
          (void)arr.get(i);  // concurrent readers stress Shared/Dirty churn
      } else {
        arr.apply(i, add, val % 100);
      }
    }
  });

  // Single-writer elements: the owner's last write must be the final value.
  // (Each owner's stream is sequential, so its own order is program order.)
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < p.elems; ++i) {
      if (is_set_mode(i)) {
        ASSERT_EQ(arr.get(i), expected[i]) << "set-mode element " << i;
      } else {
        ASSERT_EQ(arr.get(i), expected_adds[i]) << "apply-mode element " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DArrayProperty,
    ::testing::Values(PropertyParam{2, 64, 64, 512, 2000},    // comfortable cache
                      PropertyParam{2, 16, 8, 1024, 2000},    // heavy eviction
                      PropertyParam{3, 16, 8, 768, 1500},     // 3 nodes, eviction
                      PropertyParam{4, 32, 16, 256, 1000},    // high contention
                      PropertyParam{2, 64, 64, 64, 3000}),    // single-chunk-ish
    [](const auto& info) {
      const PropertyParam& p = info.param;
      return "n" + std::to_string(p.nodes) + "c" + std::to_string(p.chunk_elems) + "l" +
             std::to_string(p.cachelines) + "e" + std::to_string(p.elems);
    });

// Locks serialise read-modify-write across everything else going on.
TEST(DArrayPropertyLocks, LockedCountersAlwaysExact) {
  rt::Cluster cluster(small_cfg(3, 16, 8));
  auto arr = DArray<uint64_t>::create(cluster, 64);
  constexpr uint64_t kCounters = 4;
  constexpr int kPerNode = 40;
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    Xoshiro256 rng(n + 1);
    for (int k = 0; k < kPerNode; ++k) {
      const uint64_t c = rng.next_below(kCounters);
      arr.wlock(c);
      arr.set(c, arr.get(c) + 1);
      arr.unlock(c);
    }
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    uint64_t total = 0;
    for (uint64_t c = 0; c < kCounters; ++c) total += arr.get(c);
    EXPECT_EQ(total, 3u * kPerNode);
  });
}

}  // namespace
}  // namespace darray
