// Bulk helpers: read_bulk / write_bulk / fill / reduce.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

TEST(DArrayBulk, RoundTripWithinOneChunk) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  std::vector<uint64_t> src{1, 2, 3, 4, 5};
  a.write_bulk(10, src.data(), src.size());
  std::vector<uint64_t> dst(5);
  a.read_bulk(10, dst.data(), dst.size());
  EXPECT_EQ(dst, src);
}

TEST(DArrayBulk, SpansChunksAndNodes) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/16));
  auto a = DArray<uint64_t>::create(cluster, 16 * 8);
  std::vector<uint64_t> src(100);
  std::iota(src.begin(), src.end(), 1000);
  std::thread w([&] {
    bind_thread(cluster, 1);
    a.write_bulk(10, src.data(), src.size());  // crosses the node boundary
  });
  w.join();
  std::thread r([&] {
    bind_thread(cluster, 0);
    std::vector<uint64_t> dst(100);
    a.read_bulk(10, dst.data(), dst.size());
    EXPECT_EQ(dst, src);
    for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a.get(10 + i), src[i]);
  });
  r.join();
}

TEST(DArrayBulk, ByteElements) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint8_t>::create(cluster, 1024);
  bind_thread(cluster, 0);
  std::vector<uint8_t> src(700);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i * 7);
  a.write_bulk(100, src.data(), src.size());
  std::vector<uint8_t> dst(700);
  a.read_bulk(100, dst.data(), dst.size());
  EXPECT_EQ(dst, src);
}

TEST(DArrayBulk, FillRange) {
  rt::Cluster cluster(small_cfg(2, 16));
  auto a = DArray<uint64_t>::create(cluster, 16 * 6);
  bind_thread(cluster, 0);
  a.fill(5, 70, 9); // crosses chunks and the node boundary
  for (uint64_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.get(i), (i >= 5 && i < 70) ? 9u : 0u) << i;
}

TEST(DArrayBulk, FillEmptyRangeIsNoop) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  a.fill(10, 10, 5);
  EXPECT_EQ(a.get(10), 0u);
}

TEST(DArrayBulk, ReduceSum) {
  rt::Cluster cluster(small_cfg(2, 16));
  auto a = DArray<uint64_t>::create(cluster, 16 * 6);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < a.size(); ++i) a.set(i, i);
  const uint64_t n = a.size();
  EXPECT_EQ(a.reduce(0, n, uint64_t{0}, [](uint64_t x, uint64_t y) { return x + y; }),
            n * (n - 1) / 2);
  EXPECT_EQ(a.reduce(10, 20, uint64_t{0}, [](uint64_t x, uint64_t y) { return x + y; }),
            10u + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
}

TEST(DArrayBulk, ReduceMaxAcrossNodes) {
  rt::Cluster cluster(small_cfg(3, 16));
  auto a = DArray<uint64_t>::create(cluster, 16 * 9);
  testing::run_on_nodes(cluster, [&](rt::NodeId nid) {
    for (uint64_t i = a.local_begin(nid); i < a.local_end(nid); ++i)
      a.set(i, (i * 37) % 1000);
  });
  std::thread t([&] {
    bind_thread(cluster, 1);
    uint64_t expect = 0;
    for (uint64_t i = 0; i < a.size(); ++i) expect = std::max(expect, (i * 37) % 1000);
    EXPECT_EQ(a.reduce(0, a.size(), uint64_t{0},
                       [](uint64_t x, uint64_t y) { return std::max(x, y); }),
              expect);
  });
  t.join();
}

TEST(DArrayBulk, BulkThroughPin) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint64_t>::create(cluster, 128);
  std::thread t([&] {
    bind_thread(cluster, 1);
    ASSERT_TRUE(a.pin(0, PinMode::kWrite));
    std::vector<uint64_t> src(64);
    std::iota(src.begin(), src.end(), 7);
    a.write_bulk(0, src.data(), 64);  // entirely inside the pinned chunk
    std::vector<uint64_t> dst(64);
    a.read_bulk(0, dst.data(), 64);
    EXPECT_EQ(dst, src);
    a.unpin(0);
  });
  t.join();
}

}  // namespace
}  // namespace darray
