// Adversarial protocol stress: many threads, few chunks, mixed operations,
// tiny caches — aimed at the transaction serialisation, drain, and voluntary
// eviction race paths rather than at end values (which are checked where the
// schedule makes them deterministic).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

void add_u64(uint64_t& a, uint64_t v) { a += v; }

// All nodes hammer a single chunk with reads, writes (to per-node slots),
// applies (to a shared slot) and locks simultaneously.
TEST(DArrayStress, SingleChunkAllOpsAllNodes) {
  rt::Cluster cluster(small_cfg(3, /*chunk_elems=*/64, /*cachelines=*/4));
  auto arr = DArray<uint64_t>::create(cluster, 64);
  const auto add = arr.register_op(&add_u64, 0);
  constexpr int kIters = 25;  // every op forces a multi-party txn: keep small

  testing::run_on_nodes_mt(cluster, 2, [&](rt::NodeId n, uint32_t t) {
    Xoshiro256 rng(n * 16 + t);
    for (int k = 0; k < kIters; ++k) {
      switch (rng.next_below(4)) {
        case 0: (void)arr.get(rng.next_below(64)); break;
        case 1: arr.set(8 + n, k); break;  // per-node slot: no write races
        case 2: arr.apply(0, add, 1); break;
        case 3: {
          const uint64_t i = 20 + rng.next_below(4);
          arr.wlock(i);
          arr.set(i, arr.get(i) + 1);
          arr.unlock(i);
          break;
        }
      }
    }
  });

  // Deterministic invariants survive the chaos:
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    uint64_t locked_sum = 0;
    for (uint64_t i = 20; i < 24; ++i) locked_sum += arr.get(i);
    uint64_t applied = arr.get(0);
    uint64_t total_lock_or_apply = 0;
    (void)total_lock_or_apply;
    // Each of the 8 threads did kIters ops split among 4 kinds randomly; we
    // can't know the split, but applies + locked increments together equal
    // the number of case-2 and case-3 draws. Replay the RNG to compute them.
    uint64_t expect_apply = 0, expect_lock = 0;
    for (uint32_t node = 0; node < 3; ++node) {
      for (uint32_t t = 0; t < 2; ++t) {
        Xoshiro256 rng(node * 16 + t);
        for (int k = 0; k < kIters; ++k) {
          switch (rng.next_below(4)) {
            case 0: rng.next_below(64); break;
            case 1: break;
            case 2: expect_apply++; break;
            case 3: rng.next_below(4); expect_lock++; break;
          }
        }
      }
    }
    EXPECT_EQ(applied, expect_apply);
    EXPECT_EQ(locked_sum, expect_lock);
  });
}

// Rapid Operated <-> Unshared flapping: alternate applies and reads from
// different nodes so every iteration forces a flush-all and a re-join.
TEST(DArrayStress, OperatedUnsharedFlapping) {
  rt::Cluster cluster(small_cfg(3, 32));
  auto arr = DArray<uint64_t>::create(cluster, 32);
  const auto add = arr.register_op(&add_u64, 0);
  constexpr int kRounds = 25;
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    for (int r = 0; r < kRounds; ++r) {
      arr.apply(5, add, 1);
      if (n == static_cast<rt::NodeId>(r % 3)) (void)arr.get(5);  // rotating reader
    }
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(arr.get(5), 3u * kRounds); });
}

// Writer churn with a cache of exactly one line per runtime thread: every
// miss must first evict the only line (voluntary writeback races with the
// home's fetches).
TEST(DArrayStress, OneLineCache) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/8, /*cachelines=*/1));
  auto arr = DArray<uint64_t>::create(cluster, 8 * 32);
  std::thread t([&] {
    bind_thread(cluster, 1);
    // Alternate between distant chunks of node 0's half.
    for (int r = 0; r < 40; ++r) {
      for (uint64_t c = 0; c < 8; ++c) {
        const uint64_t i = c * 8 + (static_cast<uint64_t>(r) % 8);
        arr.set(i, static_cast<uint64_t>(r) * 100 + c);
      }
    }
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    for (uint64_t c = 0; c < 8; ++c) {
      const uint64_t i = c * 8 + (39 % 8);
      EXPECT_EQ(arr.get(i), 39u * 100 + c);
    }
  });
  check.join();
}

// Lock convoys: all nodes queue on one element's writer lock repeatedly.
TEST(DArrayStress, LockConvoy) {
  rt::Cluster cluster(small_cfg(4));
  auto arr = DArray<uint64_t>::create(cluster, 256);
  constexpr int kPerThread = 10;
  testing::run_on_nodes_mt(cluster, 2, [&](rt::NodeId, uint32_t) {
    for (int k = 0; k < kPerThread; ++k) {
      arr.wlock(0);
      arr.set(0, arr.get(0) + 1);
      arr.unlock(0);
    }
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n == 2) {
      EXPECT_EQ(arr.get(0), 4u * 2 * kPerThread);
    }
  });
}

// Readers repeatedly upgrade to writers on the same chunk from two nodes.
TEST(DArrayStress, ReadWriteUpgradeChurn) {
  rt::Cluster cluster(small_cfg(2, 32));
  auto arr = DArray<uint64_t>::create(cluster, 64);
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    for (int r = 0; r < 40; ++r) {
      (void)arr.get(16 + n);   // join as sharer
      arr.set(16 + n, static_cast<uint64_t>(r));  // upgrade (invalidates peer)
    }
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId) {
    EXPECT_EQ(arr.get(16), 39u);
    EXPECT_EQ(arr.get(17), 39u);
  });
}

}  // namespace
}  // namespace darray
