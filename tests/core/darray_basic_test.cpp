#include "core/darray.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(DArrayBasic, SingleNodeSetGet) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 1000);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < 1000; ++i) a.set(i, i * 3);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(a.get(i), i * 3);
}

TEST(DArrayBasic, ZeroInitialised) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 500);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(a.get(i), 0u);
}

TEST(DArrayBasic, RemoteReadSeesHomeWrites) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 512);
  // Node layout: node 0 owns the first half, node 1 the second.
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i) a.set(i, i + 7);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.get(i), i + 7);
  });
}

TEST(DArrayBasic, RemoteWriteVisibleAtHome) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  // Node 0 writes elements homed at node 1.
  const uint64_t idx = a.local_begin(1);
  ASSERT_LT(idx, a.size());
  std::thread t1([&] {
    bind_thread(cluster, 0);
    a.set(idx, 4242);
  });
  t1.join();
  std::thread t2([&] {
    bind_thread(cluster, 1);
    EXPECT_EQ(a.get(idx), 4242u);
  });
  t2.join();
}

TEST(DArrayBasic, SmallElementTypes) {
  rt::Cluster cluster(small_cfg(2));
  auto a8 = DArray<uint8_t>::create(cluster, 300);
  auto a16 = DArray<uint16_t>::create(cluster, 300);
  auto a32 = DArray<uint32_t>::create(cluster, 300);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < 300; ++i) {
      a8.set(i, static_cast<uint8_t>(i));
      a16.set(i, static_cast<uint16_t>(i * 5));
      a32.set(i, static_cast<uint32_t>(i * 9));
    }
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < 300; ++i) {
      EXPECT_EQ(a8.get(i), static_cast<uint8_t>(i));
      EXPECT_EQ(a16.get(i), static_cast<uint16_t>(i * 5));
      EXPECT_EQ(a32.get(i), static_cast<uint32_t>(i * 9));
    }
  });
}

TEST(DArrayBasic, DoubleElements) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<double>::create(cluster, 200);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i)
      a.set(i, static_cast<double>(i) * 0.5);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i)
      EXPECT_DOUBLE_EQ(a.get(i), static_cast<double>(i) * 0.5);
  });
}

TEST(DArrayBasic, PartialLastChunk) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/64));
  auto a = DArray<uint64_t>::create(cluster, 130);  // 3 chunks: 64+64+2
  bind_thread(cluster, 0);
  a.set(129, 99);
  std::thread t([&] {
    bind_thread(cluster, 1);
    EXPECT_EQ(a.get(129), 99u);
    a.set(128, 77);
  });
  t.join();
  EXPECT_EQ(a.get(128), 77u);
}

TEST(DArrayBasic, CustomPartition) {
  rt::ClusterConfig cfg = small_cfg(2, 64);
  rt::Cluster cluster(cfg);
  // Node 0 gets only the first chunk; node 1 the rest.
  const uint64_t offsets[] = {0, 64};
  auto a = DArray<uint64_t>::create(cluster, 64 * 4, offsets);
  EXPECT_EQ(a.local_end(0), 64u);
  EXPECT_EQ(a.local_begin(1), 64u);
  EXPECT_EQ(a.local_end(1), 64u * 4);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i) a.set(i, i + 1);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.get(i), i + 1);
  });
}

TEST(DArrayBasic, MultipleArraysCoexist) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 256);
  auto b = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < 256; ++i) {
    a.set(i, i);
    b.set(i, 1000 - i);
  }
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(a.get(i), i);
    EXPECT_EQ(b.get(i), 1000 - i);
  }
}

TEST(DArrayBasic, SixNodeSweep) {
  rt::Cluster cluster(small_cfg(6, 64, 128));
  auto a = DArray<uint64_t>::create(cluster, 64 * 36);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i) a.set(i, i ^ 0xabc);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.get(i), i ^ 0xabc);
  });
}

}  // namespace
}  // namespace darray
