// The Operate interface and the extended coherence protocol's Operated state
// (§4.3/§4.4): concurrent combine on multiple nodes, reduce at home, and the
// Operated → Unshared flush on read/write.
#include <gtest/gtest.h>

#include <limits>
#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

void add_u64(uint64_t& acc, uint64_t v) { acc += v; }
void min_d(double& acc, double v) {
  if (v < acc) acc = v;
}

TEST(DArrayOperate, SingleNodeApply) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 100);
  const auto add = a.register_op(&add_u64, 0);
  bind_thread(cluster, 0);
  a.apply(5, add, 10);
  a.apply(5, add, 32);
  EXPECT_EQ(a.get(5), 42u);
}

TEST(DArrayOperate, AllNodesApplySameElement) {
  rt::Cluster cluster(small_cfg(4));
  auto a = DArray<uint64_t>::create(cluster, 256);
  const auto add = a.register_op(&add_u64, 0);
  constexpr int kPerNode = 500;
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < kPerNode; ++i) a.apply(3, add, 1);
  });
  // The read forces Operated → Unshared: every node's combine buffer must be
  // flushed and reduced before the value is served.
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(3), 4u * kPerNode); });
}

TEST(DArrayOperate, ScatteredApplies) {
  rt::Cluster cluster(small_cfg(3, 32));
  auto a = DArray<uint64_t>::create(cluster, 32 * 9);
  const auto add = a.register_op(&add_u64, 0);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = 0; i < a.size(); ++i) a.apply(i, add, n + 1);
  });
  // 1 + 2 + 3 applied once per element by each node.
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.get(i), 6u);
  });
}

TEST(DArrayOperate, MinOperator) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<double>::create(cluster, 64);
  const auto mn = a.register_op(&min_d, std::numeric_limits<double>::infinity());
  std::thread init([&] {
    bind_thread(cluster, 0);
    a.set(0, 100.0);
  });
  init.join();
  run_on_nodes(cluster, [&](rt::NodeId n) {
    a.apply(0, mn, n == 0 ? 42.5 : 7.25);
  });
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(0), 7.25);
  });
  check.join();
}

TEST(DArrayOperate, ApplyVisibleAfterWriteToo) {
  // A write request must also force the flush before granting ownership.
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(&add_u64, 0);
  std::thread t1([&] {
    bind_thread(cluster, 1);
    for (int i = 0; i < 100; ++i) a.apply(2, add, 1);
  });
  t1.join();
  std::thread t2([&] {
    bind_thread(cluster, 0);
    // Read-modify-write through set: must observe all 100 increments.
    const uint64_t v = a.get(2);
    EXPECT_EQ(v, 100u);
    a.set(2, v + 1);
    EXPECT_EQ(a.get(2), 101u);
  });
  t2.join();
}

TEST(DArrayOperate, OperatorSwitchFlushesFirst) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(&add_u64, 0);
  const auto mx = a.register_op(
      +[](uint64_t& acc, uint64_t v) {
        if (v > acc) acc = v;
      },
      0);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (int i = 0; i < 10; ++i) a.apply(1, add, 1);  // value becomes 10
    a.apply(1, mx, 5);                                // switch op: flush, then max
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(1), 10u);  // max(10, 5) == 10
  });
  check.join();
}

TEST(DArrayOperate, HomeAppliesDirectlyDuringOperated) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(&add_u64, 0);
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < 250; ++i) a.apply(0, add, 2);  // home + remote concurrently
  });
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(0), 1000u); });
}

TEST(DArrayOperate, ConcurrentAppliersManyThreadsPerNode) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(&add_u64, 0);
  testing::run_on_nodes_mt(cluster, 3, [&](rt::NodeId, uint32_t) {
    for (int i = 0; i < 200; ++i) a.apply(7, add, 1);
  });
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(7), 2u * 3 * 200);
  });
  check.join();
}

TEST(DArrayOperate, EvictionFlushesCombineBuffer) {
  // Tiny cache: applied chunks get evicted, shipping combined operands home;
  // re-applying afterwards must keep accumulating correctly.
  rt::ClusterConfig cfg = small_cfg(2, /*chunk_elems=*/16, /*cachelines=*/8);
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 16 * 64);
  const auto add = a.register_op(&add_u64, 0);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (int sweep = 0; sweep < 3; ++sweep)
      for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.apply(i, add, 1);
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) ASSERT_EQ(a.get(i), 3u);
  });
  check.join();
}

TEST(DArrayOperate, ApplyAfterReadAfterApply) {
  // Operated → Unshared → Operated round trips.
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(&add_u64, 0);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 10; ++i) a.apply(4, add, 1);
      EXPECT_EQ(a.get(4), static_cast<uint64_t>((round + 1) * 10));
    }
  });
  t.join();
}

}  // namespace
}  // namespace darray
