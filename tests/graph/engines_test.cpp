// Cross-engine equivalence: DArray (plain + Pin), GAM, and Gemini engines
// must all match the serial reference on PageRank and Connected Components,
// across node counts and thread counts (parameterized sweep).
#include <gtest/gtest.h>

#include "graph/cc.hpp"
#include "graph/pagerank.hpp"
#include "graph/reference.hpp"
#include "graph/rmat.hpp"
#include "tests/test_util.hpp"

namespace darray::graph {
namespace {

Csr test_graph(uint32_t scale = 8) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 4;
  p.seed = 3;
  return rmat_graph(p);
}

Csr test_graph_sym(uint32_t scale = 7) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 4;
  p.seed = 5;
  return Csr::symmetric_from_edges(uint64_t{1} << p.scale, rmat_edges(p));
}

void expect_ranks_match(const std::vector<double>& got, const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < got.size(); ++v)
    ASSERT_NEAR(got[v], want[v], 1e-12) << "vertex " << v;
}

struct EngineParam {
  uint32_t nodes;
  uint32_t threads;
  bool use_pin;
};

class PageRankEngines : public ::testing::TestWithParam<EngineParam> {};

TEST_P(PageRankEngines, DArrayMatchesReference) {
  const EngineParam p = GetParam();
  Csr g = test_graph();
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.iterations = 5;
  opt.threads_per_node = p.threads;
  opt.use_pin = p.use_pin;
  expect_ranks_match(pagerank_darray(cluster, g, opt), pagerank_reference(g, 5));
}

TEST_P(PageRankEngines, GeminiMatchesReference) {
  const EngineParam p = GetParam();
  Csr g = test_graph();
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.iterations = 5;
  opt.threads_per_node = p.threads;
  expect_ranks_match(pagerank_gemini(cluster, g, opt), pagerank_reference(g, 5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PageRankEngines,
                         ::testing::Values(EngineParam{1, 1, false},
                                           EngineParam{2, 1, false},
                                           EngineParam{2, 2, false},
                                           EngineParam{3, 1, true},
                                           EngineParam{2, 1, true}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.nodes) + "t" +
                                  std::to_string(info.param.threads) +
                                  (info.param.use_pin ? "pin" : "plain");
                         });

TEST(PageRankGam, MatchesReferenceSmall) {
  // GAM is slow by design; keep this one small.
  Csr g = test_graph(6);
  rt::Cluster cluster(darray::testing::small_cfg(2));
  GraphRunOptions opt;
  opt.iterations = 3;
  expect_ranks_match(pagerank_gam(cluster, g, opt), pagerank_reference(g, 3));
}

class CcEngines : public ::testing::TestWithParam<EngineParam> {};

TEST_P(CcEngines, DArrayMatchesReference) {
  const EngineParam p = GetParam();
  Csr g = test_graph_sym();
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.threads_per_node = p.threads;
  opt.use_pin = p.use_pin;
  EXPECT_EQ(cc_darray(cluster, g, opt), cc_reference(g));
}

TEST_P(CcEngines, GeminiMatchesReference) {
  const EngineParam p = GetParam();
  Csr g = test_graph_sym();
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.threads_per_node = p.threads;
  EXPECT_EQ(cc_gemini(cluster, g, opt), cc_reference(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcEngines,
                         ::testing::Values(EngineParam{1, 1, false},
                                           EngineParam{2, 1, false},
                                           EngineParam{2, 2, false},
                                           EngineParam{3, 1, false}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.nodes) + "t" +
                                  std::to_string(info.param.threads);
                         });

TEST(CcGam, MatchesReferenceSmall) {
  Csr g = test_graph_sym(6);
  rt::Cluster cluster(darray::testing::small_cfg(2));
  GraphRunOptions opt;
  EXPECT_EQ(cc_gam(cluster, g, opt), cc_reference(g));
}

TEST(CcReference, DisconnectedComponents) {
  // 0-1-2 and 3-4 as separate components, 5 isolated.
  Csr g = Csr::symmetric_from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto labels = cc_reference(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[5], 5u);
}

TEST(PageRankReference, RanksSumToOneIsh) {
  Csr g = test_graph();
  const auto ranks = pagerank_reference(g, 10);
  double sum = 0;
  for (double r : ranks) sum += r;
  // Dangling vertices leak rank, so the sum is <= 1 but must stay positive.
  EXPECT_GT(sum, 0.3);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

}  // namespace
}  // namespace darray::graph
