#include "graph/csr.hpp"

#include <gtest/gtest.h>

namespace darray::graph {
namespace {

TEST(Csr, EmptyGraph) {
  Csr g = Csr::from_edges(5, {});
  EXPECT_EQ(g.n_vertices(), 5u);
  EXPECT_EQ(g.n_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(Csr, DegreesAndNeighbors) {
  Csr g = Csr::from_edges(4, {{0, 1}, {0, 2}, {1, 2}, {3, 0}});
  EXPECT_EQ(g.n_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.out_degree(3), 1u);
  auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<Vertex>(n0.begin(), n0.end()), (std::vector<Vertex>{1, 2}));
  EXPECT_EQ(g.neighbors(3)[0], 0u);
}

TEST(Csr, SelfLoopsAndMultiEdgesKept) {
  Csr g = Csr::from_edges(2, {{0, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.out_degree(0), 3u);
}

TEST(Csr, SymmetricDoublesEdges) {
  Csr g = Csr::symmetric_from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.n_edges(), 4u);
  EXPECT_EQ(g.out_degree(1), 2u);  // from 0→1 reversed and 1→2
  EXPECT_EQ(g.neighbors(2)[0], 1u);
}

TEST(Csr, TotalDegreeEqualsEdgeCount) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < 50; ++v) edges.push_back({v, (v * 7 + 3) % 50});
  Csr g = Csr::from_edges(50, edges);
  uint64_t total = 0;
  for (Vertex v = 0; v < 50; ++v) total += g.out_degree(v);
  EXPECT_EQ(total, g.n_edges());
}

}  // namespace
}  // namespace darray::graph
