#include "graph/gemini.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace darray::graph {
namespace {

TEST(GeminiContext, PartitionCoversRange) {
  rt::Cluster cluster(darray::testing::small_cfg(3));
  GeminiContext<double> ctx(cluster, 100, 0.0);
  EXPECT_EQ(ctx.begin(0), 0u);
  EXPECT_EQ(ctx.end(2), 100u);
  for (uint32_t i = 0; i + 1 < 3; ++i) EXPECT_EQ(ctx.end(i), ctx.begin(i + 1));
}

TEST(GeminiContext, ExchangeSumsContributions) {
  rt::Cluster cluster(darray::testing::small_cfg(3));
  const uint64_t n = 90;
  GeminiContext<double> ctx(cluster, n, 0.0);
  // Each node contributes node_id+1 to EVERY vertex in its accumulator.
  for (uint32_t node = 0; node < 3; ++node) {
    double* acc = ctx.acc(node);
    for (uint64_t v = 0; v < n; ++v) acc[v] = static_cast<double>(node + 1);
  }
  for (uint32_t node = 0; node < 3; ++node) ctx.exchange_send(node);
  for (uint32_t node = 0; node < 3; ++node) {
    double* reduced = ctx.exchange_reduce(node, [](double a, double x) { return a + x; });
    for (uint64_t v = ctx.begin(node); v < ctx.end(node); ++v)
      ASSERT_EQ(reduced[v], 6.0) << "vertex " << v;  // 1+2+3
  }
}

TEST(GeminiContext, MinIdentityUntouchedSlotsStayIdentity) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  GeminiContext<uint64_t> ctx(cluster, 40, ~0ull);
  ctx.acc(1)[3] = 7;  // node 1 lowers vertex 3 (owned by node 0)
  ctx.exchange_send(0);
  ctx.exchange_send(1);
  uint64_t* reduced =
      ctx.exchange_reduce(0, [](uint64_t a, uint64_t x) { return x < a ? x : a; });
  EXPECT_EQ(reduced[3], 7u);
  EXPECT_EQ(reduced[4], ~0ull);
}

TEST(GeminiContext, ResetRestoresIdentity) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  GeminiContext<double> ctx(cluster, 20, 0.0);
  ctx.acc(0)[5] = 9.0;
  ctx.reset(0);
  EXPECT_EQ(ctx.acc(0)[5], 0.0);
}

TEST(GeminiContext, ExchangeGoesOverTheFabric) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  GeminiContext<double> ctx(cluster, 64, 0.0);
  cluster.fabric().reset_stats();
  ctx.exchange_send(0);
  ctx.exchange_send(1);
  const rdma::FabricStats s = cluster.fabric().stats();
  EXPECT_EQ(s.writes, 2u) << "one bulk WRITE per peer per node";
  EXPECT_EQ(s.bytes_written, 2u * 32 * sizeof(double));
}

}  // namespace
}  // namespace darray::graph
