#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace darray::graph {
namespace {

TEST(Rmat, EdgeCountMatchesParams) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const auto edges = rmat_edges(p);
  EXPECT_EQ(edges.size(), (1u << 10) * 8u);
}

TEST(Rmat, VerticesInRange) {
  RmatParams p;
  p.scale = 8;
  for (const Edge& e : rmat_edges(p)) {
    EXPECT_LT(e.first, 1u << 8);
    EXPECT_LT(e.second, 1u << 8);
  }
}

TEST(Rmat, DeterministicForSeed) {
  RmatParams p;
  p.scale = 8;
  p.seed = 77;
  EXPECT_EQ(rmat_edges(p), rmat_edges(p));
}

TEST(Rmat, DifferentSeedsDiffer) {
  RmatParams a, b;
  a.scale = b.scale = 8;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(rmat_edges(a), rmat_edges(b));
}

TEST(Rmat, PowerLawSkew) {
  // R-MAT(0.57,...) produces hubs: the max out-degree should far exceed the
  // mean (edge_factor).
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 4;
  Csr g = rmat_graph(p);
  uint64_t max_deg = 0;
  for (Vertex v = 0; v < g.n_vertices(); ++v) max_deg = std::max(max_deg, g.out_degree(v));
  EXPECT_GT(max_deg, 10u * p.edge_factor);
}

TEST(Rmat, PermutationPreservesDegreeDistribution) {
  RmatParams a;
  a.scale = 8;
  a.permute_vertices = false;
  RmatParams b = a;
  b.permute_vertices = true;
  Csr ga = Csr::from_edges(1 << 8, rmat_edges(a));
  Csr gb = Csr::from_edges(1 << 8, rmat_edges(b));
  std::vector<uint64_t> da, db;
  for (Vertex v = 0; v < (1u << 8); ++v) {
    da.push_back(ga.out_degree(v));
    db.push_back(gb.out_degree(v));
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
}

}  // namespace
}  // namespace darray::graph
