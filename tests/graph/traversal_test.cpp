// BFS and SSSP (write_min applications beyond the paper's PR/CC pair),
// validated against serial references across engines and node counts.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/sssp.hpp"
#include "tests/test_util.hpp"

namespace darray::graph {
namespace {

Csr chain(uint64_t n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Csr::from_edges(n, edges);
}

Csr random_sym(uint32_t scale, uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 4;
  p.seed = seed;
  return Csr::symmetric_from_edges(uint64_t{1} << scale, rmat_edges(p));
}

TEST(BfsReference, ChainDistances) {
  Csr g = chain(10);
  const auto d = bfs_reference(g, 0);
  for (uint64_t v = 0; v < 10; ++v) EXPECT_EQ(d[v], v);
  const auto d3 = bfs_reference(g, 3);
  EXPECT_EQ(d3[2], kUnreached) << "chain is directed";
  EXPECT_EQ(d3[9], 6u);
}

TEST(BfsReference, UnreachableVertices) {
  Csr g = Csr::from_edges(5, {{0, 1}, {3, 4}});
  const auto d = bfs_reference(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreached);
  EXPECT_EQ(d[3], kUnreached);
}

struct TraversalParam {
  uint32_t nodes;
  uint32_t threads;
};

class BfsEngines : public ::testing::TestWithParam<TraversalParam> {};

TEST_P(BfsEngines, DArrayMatchesReference) {
  const auto p = GetParam();
  Csr g = random_sym(7, 11);
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.threads_per_node = p.threads;
  EXPECT_EQ(bfs_darray(cluster, g, 0, opt), bfs_reference(g, 0));
}

TEST_P(BfsEngines, GeminiMatchesReference) {
  const auto p = GetParam();
  Csr g = random_sym(7, 13);
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.threads_per_node = p.threads;
  EXPECT_EQ(bfs_gemini(cluster, g, 5, opt), bfs_reference(g, 5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfsEngines,
                         ::testing::Values(TraversalParam{1, 1}, TraversalParam{2, 1},
                                           TraversalParam{2, 2}, TraversalParam{3, 1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.nodes) + "t" +
                                  std::to_string(info.param.threads);
                         });

TEST(SsspReference, WeightedChain) {
  Csr g = chain(6);
  const auto d = sssp_reference(g, 0);
  uint64_t expect = 0;
  EXPECT_EQ(d[0], 0u);
  for (Vertex v = 0; v + 1 < 6; ++v) {
    expect += edge_weight(v, v + 1);
    EXPECT_EQ(d[v + 1], expect);
  }
}

TEST(SsspReference, PrefersCheaperPath) {
  // Two routes 0→3: direct vs through 1,2; Dijkstra must take the cheaper.
  Csr g = Csr::from_edges(4, {{0, 3}, {0, 1}, {1, 2}, {2, 3}});
  const auto d = sssp_reference(g, 0);
  const uint64_t direct = edge_weight(0, 3);
  const uint64_t via = edge_weight(0, 1) + edge_weight(1, 2) + edge_weight(2, 3);
  EXPECT_EQ(d[3], std::min(direct, via));
}

class SsspEngines : public ::testing::TestWithParam<TraversalParam> {};

TEST_P(SsspEngines, DArrayMatchesReference) {
  const auto p = GetParam();
  Csr g = random_sym(7, 17);
  rt::Cluster cluster(darray::testing::small_cfg(p.nodes));
  GraphRunOptions opt;
  opt.threads_per_node = p.threads;
  EXPECT_EQ(sssp_darray(cluster, g, 0, opt), sssp_reference(g, 0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsspEngines,
                         ::testing::Values(TraversalParam{1, 1}, TraversalParam{2, 1},
                                           TraversalParam{3, 2}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.nodes) + "t" +
                                  std::to_string(info.param.threads);
                         });

TEST(EdgeWeight, DeterministicAndBounded) {
  for (Vertex u = 0; u < 50; ++u)
    for (Vertex v = 0; v < 50; ++v) {
      const uint64_t w = edge_weight(u, v);
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 15u);
      EXPECT_EQ(w, edge_weight(u, v));
    }
}

}  // namespace
}  // namespace darray::graph
