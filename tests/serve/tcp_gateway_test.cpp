// TcpGateway line protocol over a live serve stack: real sockets, real
// sessions, typed errors mapped onto wire replies.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "kvs/kvs.hpp"
#include "serve/tcp_gateway.hpp"
#include "tests/test_util.hpp"

namespace darray::serve {
namespace {

int dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string roundtrip(int fd, const std::string& cmd, size_t want_lines = 1) {
  EXPECT_EQ(::send(fd, cmd.data(), cmd.size(), 0),
            static_cast<ssize_t>(cmd.size()));
  std::string out;
  size_t lines = 0;
  char c;
  while (lines < want_lines && ::recv(fd, &c, 1, 0) == 1) {
    out.push_back(c);
    if (c == '\n') ++lines;
  }
  return out;
}

TEST(ServeGateway, LineProtocolRoundTrip) {
  rt::Cluster cluster(testing::small_cfg(2));
  kvs::KvsConfig kcfg;
  kcfg.n_main_buckets = 64;
  kcfg.n_overflow_buckets = 32;
  kcfg.byte_capacity = 4 << 20;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, kcfg));
  TcpGateway gw(svc, {.bind_addr = "127.0.0.1", .port = 0, .node = 0});
  ASSERT_TRUE(gw.start());
  ASSERT_NE(gw.port(), 0);

  const int fd = dial(gw.port());
  EXPECT_EQ(roundtrip(fd, "PUT greeting hello world\n"), "STORED\n");
  EXPECT_EQ(roundtrip(fd, "GET greeting\n", 2), "VALUE 11\nhello world\n");
  EXPECT_EQ(roundtrip(fd, "GET nope\n"), "NOT_FOUND\n");
  EXPECT_EQ(roundtrip(fd, "DEL greeting\n"), "DELETED\n");
  EXPECT_EQ(roundtrip(fd, "DEL greeting\n"), "NOT_FOUND\n");
  EXPECT_EQ(roundtrip(fd, "FROB x\n"), "ERR unknown_command\n");
  EXPECT_EQ(roundtrip(fd, "GET\n"), "ERR malformed\n");
  ::close(fd);

  // The gateway handles connections serially: a second connection gets its
  // own session and still sees the store.
  const int fd2 = dial(gw.port());
  EXPECT_EQ(roundtrip(fd2, "PUT k2 v2\n"), "STORED\n");
  EXPECT_EQ(roundtrip(fd2, "GET k2\n", 2), "VALUE 2\nv2\n");
  ::close(fd2);

  gw.stop();
  svc.shutdown();
}

}  // namespace
}  // namespace darray::serve
