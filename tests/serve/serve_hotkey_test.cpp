// Hot-key handling: promotion engages on a skewed read mix, writes invalidate
// before their response is visible, and the whole serve path (sessions,
// dispatch, hot cache) stays correct under seeded fabric chaos.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "kvs/kvs.hpp"
#include "serve/client.hpp"
#include "tests/test_util.hpp"

namespace darray::serve {
namespace {

kvs::KvsConfig tiny_kvs() {
  kvs::KvsConfig c;
  c.n_main_buckets = 64;
  c.n_overflow_buckets = 32;
  c.byte_capacity = 4 << 20;
  return c;
}

TEST(ServeHotKey, PromotionEngagesOnSkewedReads) {
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.hot_key_enabled = true;
  cfg.hot_promote_threshold = 8;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0});

  ASSERT_EQ(cli.put("celebrity", "profile-v1"), Status::kOk);
  std::string v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(cli.get("celebrity", v), Status::kOk);
    EXPECT_EQ(v, "profile-v1");
  }
  EXPECT_GT(svc.counters().hot_promotions.load(), 0u);
  EXPECT_GT(svc.counters().hot_hits.load(), 0u);
  svc.shutdown();
}

TEST(ServeHotKey, WriteInvalidatesBeforeResponding) {
  // Once a put's response has been observed, no subsequent get may return the
  // pre-put value — even for a promoted key.
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.hot_promote_threshold = 4;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0});

  std::string v;
  for (int gen = 0; gen < 20; ++gen) {
    const std::string want = "gen" + std::to_string(gen);
    ASSERT_EQ(cli.put("config", want), Status::kOk);
    for (int i = 0; i < 10; ++i) {  // promote, then keep reading
      ASSERT_EQ(cli.get("config", v), Status::kOk);
      ASSERT_EQ(v, want) << "stale read after acknowledged write, gen " << gen;
    }
  }
  EXPECT_GT(svc.counters().hot_invalidations.load(), 0u);
  // Deletes invalidate too.
  ASSERT_EQ(cli.erase("config"), Status::kOk);
  EXPECT_EQ(cli.get("config", v), Status::kNotFound);
  svc.shutdown();
}

chaos::FaultPlan serve_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.02;
  p.p_rnr = 0.02;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 100'000;
  return p;
}

TEST(ServeHotKey, ZipfianMixCorrectUnderChaos) {
  // Zipfian 0.99 get/put mix through client sessions on every node, over a
  // faulty fabric. Values are self-verifying (key-derived prefix), so any
  // cross-key mixup, stale hot-cache read, or lost write surfaces as a
  // mismatch. Recoverable faults ride the comm layer's retry budget.
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    rt::ClusterConfig ccfg = testing::small_cfg(3);
    const chaos::FaultPlan plan = serve_plan(seed);
    ccfg.fault_plan = &plan;
    rt::Cluster cluster(ccfg);
    ServeConfig cfg;
    cfg.hot_promote_threshold = 8;
    cfg.workers_per_node = 2;
    auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);

    constexpr uint64_t kKeys = 40;
    auto key_of = [](uint64_t k) { return "zk" + std::to_string(k); };
    auto value_of = [&](uint64_t k, uint64_t ver) {
      return "zk" + std::to_string(k) + "#" + std::to_string(ver);
    };
    {
      Client loader = Client::connect(svc, {.node = 0});
      for (uint64_t k = 0; k < kKeys; ++k)
        ASSERT_EQ(loader.put(key_of(k), value_of(k, 0)), Status::kOk);
    }

    std::vector<std::thread> ts;
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      ts.emplace_back([&, n] {
        Client cli = Client::connect(svc, {.node = n, .window = 8});
        Xoshiro256 rng(seed * 1000003 + n);
        ZipfGenerator zipf(kKeys, 0.99);
        std::string v;
        for (int i = 0; i < 400; ++i) {
          const uint64_t k = zipf.next(rng);
          if (rng.next_double() < 0.9) {
            const Status st = cli.get(key_of(k), v);
            ASSERT_EQ(st, Status::kOk) << key_of(k);
            // Writers bump the version concurrently; the key-derived prefix
            // must always match.
            ASSERT_EQ(v.substr(0, key_of(k).size() + 1), key_of(k) + "#");
          } else {
            ASSERT_EQ(cli.put(key_of(k), value_of(k, static_cast<uint64_t>(i))),
                      Status::kOk);
          }
        }
      });
    }
    for (auto& t : ts) t.join();

    EXPECT_EQ(cluster.comm_error_count(), 0u);
    EXPECT_GT(cluster.fabric().stats().total_faults(), 0u)
        << "the plan must actually have bitten";
    svc.shutdown();
  }
}

}  // namespace
}  // namespace darray::serve
