// Admission control under overload: bounded queues shed with kBusy and never
// hang; unbounded queues accept everything; a dead backend surfaces kTimeout.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kvs/kvs.hpp"
#include "serve/client.hpp"
#include "tests/test_util.hpp"

namespace darray::serve {
namespace {

kvs::KvsConfig tiny_kvs() {
  kvs::KvsConfig c;
  c.n_main_buckets = 64;
  c.n_overflow_buckets = 32;
  c.byte_capacity = 4 << 20;
  return c;
}

TEST(ServeOverload, ShedsWithBusyAndNeverHangs) {
  // One slow worker + a tiny accept queue: a pipelined burst far beyond
  // capacity must (a) complete every handle — shed ops resolve as kBusy, not
  // hang — and (b) actually shed.
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 4;
  cfg.worker_delay_ns = 2'000'000;  // 2 ms per op: queue fills immediately
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 64});

  std::vector<OpHandle> hs;
  for (int i = 0; i < 100; ++i)
    hs.push_back(cli.async_put("hotspot" + std::to_string(i % 3), "v"));
  uint64_t ok = 0, busy = 0;
  for (auto& h : hs) {
    const Status st = h.get().status;
    if (st == Status::kOk)
      ++ok;
    else if (st == Status::kBusy)
      ++busy;
    else
      FAIL() << "unexpected status " << status_name(st);
  }
  EXPECT_EQ(ok + busy, 100u);
  EXPECT_GT(busy, 0u) << "burst above capacity must shed";
  EXPECT_GT(ok, 0u) << "admitted requests must still be served";
  EXPECT_EQ(svc.counters().shed.load(), svc.counters().busy_replies.load());
  svc.shutdown();
}

TEST(ServeOverload, UnboundedQueueNeverSheds) {
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 0;  // admission off
  cfg.worker_delay_ns = 100'000;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 32});

  std::vector<OpHandle> hs;
  for (int i = 0; i < 80; ++i) hs.push_back(cli.async_put("k" + std::to_string(i), "v"));
  for (auto& h : hs) EXPECT_EQ(h.get().status, Status::kOk);
  EXPECT_EQ(svc.counters().shed.load(), 0u);
  svc.shutdown();
}

TEST(ServeOverload, DeadBackendTimesOutTyped) {
  // Zero workers: accepted requests never execute. A session with a timeout
  // gets kTimeout (not a hang, not a crash), and the response that never
  // came is not counted as late (nothing was ever produced).
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 0;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli =
      Client::connect(svc, {.node = 0, .window = 4, .timeout_ns = 50'000'000});

  std::string v;
  EXPECT_EQ(cli.get("anything", v), Status::kTimeout);
  EXPECT_EQ(cli.put("anything", "x"), Status::kTimeout);
  svc.shutdown();
}

TEST(ServeOverload, ShedBurstThenRecover) {
  // After a shed burst drains, the service keeps working normally.
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 2;
  cfg.worker_delay_ns = 1'000'000;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 32});

  std::vector<OpHandle> hs;
  for (int i = 0; i < 40; ++i) hs.push_back(cli.async_put("burst", "v"));
  for (auto& h : hs) h.get();
  ASSERT_GT(svc.counters().shed.load(), 0u);

  // Sequential (window-1-style) traffic after the burst: full service.
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(cli.put("after" + std::to_string(i), "v"), Status::kOk);
  std::string v;
  EXPECT_EQ(cli.get("after0", v), Status::kOk);
  EXPECT_EQ(v, "v");
  svc.shutdown();
}

}  // namespace
}  // namespace darray::serve
