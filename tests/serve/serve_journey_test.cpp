// Request-journey tracing through the full serve path: the five stages must
// partition end-to-end time, an injected backend stall must show up as a
// backend-dominated tail, exceptional requests (shed / timed out) must be
// retained with their flags, and the sync client's kBusy retry must recover.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kvs/kvs.hpp"
#include "obs/journey.hpp"
#include "serve/client.hpp"
#include "tests/test_util.hpp"

namespace darray::serve {
namespace {

kvs::KvsConfig tiny_kvs() {
  kvs::KvsConfig c;
  c.n_main_buckets = 64;
  c.n_overflow_buckets = 32;
  c.byte_capacity = 4 << 20;
  return c;
}

obs::JourneyCollector& fresh_collector() {
  obs::JourneyCollector& jc = obs::journey_collector();
  jc.reset();
  return jc;
}

TEST(ServeJourney, StagesPartitionEndToEndExactly) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.worker_delay_ns = 100'000;  // make the backend stage non-trivial
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 8});

  const int kOps = 120;
  for (int i = 0; i < kOps; ++i)
    ASSERT_EQ(cli.put("k" + std::to_string(i % 20), "v" + std::to_string(i)), Status::kOk);
  std::string v;
  for (int i = 0; i < kOps; ++i)
    ASSERT_EQ(cli.get("k" + std::to_string(i % 20), v), Status::kOk);

  EXPECT_EQ(jc.completed(), static_cast<uint64_t>(2 * kOps));
  const obs::HistogramSnapshot e2e = jc.e2e_snapshot();
  ASSERT_EQ(e2e.count, static_cast<uint64_t>(2 * kOps));
  // All six stamps come from one process clock and each stage is a consecutive
  // difference, so the per-stage sums must reproduce the end-to-end sum
  // exactly — this is the invariant the CI stage_sum_ratio gate holds at 10%
  // under soak noise; in-process it has no excuse to be off at all.
  uint64_t stage_sum = 0;
  for (size_t i = 0; i < obs::kNumJourneyStages; ++i)
    stage_sum += jc.stage_snapshot(static_cast<obs::JourneyStage>(i)).sum_ns;
  EXPECT_EQ(stage_sum, e2e.sum_ns);
  // The injected 100 us delay runs on the worker: the backend cell sees every
  // completed op and at least kOps * delay of total time.
  const obs::HistogramSnapshot backend = jc.stage_snapshot(obs::JourneyStage::kBackend);
  EXPECT_EQ(backend.count, static_cast<uint64_t>(2 * kOps));
  EXPECT_GE(backend.sum_ns, static_cast<uint64_t>(2 * kOps) * cfg.worker_delay_ns);
  svc.shutdown();
}

TEST(ServeJourney, BackendStallDominatesRetainedTail) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.worker_delay_ns = 500'000;       // the injected stall under test
  cfg.journey_slow_floor_ns = 250'000; // every completed op clears the floor
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 4});

  for (int i = 0; i < 40; ++i)
    ASSERT_EQ(cli.put("stall" + std::to_string(i % 8), "v"), Status::kOk);

  EXPECT_GE(jc.retained(), 40u);
  const auto kept = jc.snapshot_retained();
  uint64_t clean = 0, backend_dom = 0;
  for (const obs::RequestJourney& j : kept) {
    if (j.flags != 0 || j.total_ns() == 0) continue;
    ++clean;
    if (j.dominant_stage() == obs::JourneyStage::kBackend) ++backend_dom;
  }
  ASSERT_GT(clean, 0u);
  // The CI gate demands >= 60%; a quiet unit-test host leaves no other stage
  // anywhere near a 500 us stall.
  EXPECT_GE(backend_dom * 100, clean * 60)
      << backend_dom << " of " << clean << " retained journeys backend-dominated";
  svc.shutdown();
}

TEST(ServeJourney, ShedRequestsRetainedWithFlag) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 2;
  cfg.worker_delay_ns = 2'000'000;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 64});

  std::vector<OpHandle> hs;
  for (int i = 0; i < 60; ++i) hs.push_back(cli.async_put("hot" + std::to_string(i % 2), "v"));
  uint64_t busy = 0;
  for (auto& h : hs)
    if (h.get().status == Status::kBusy) ++busy;
  ASSERT_GT(busy, 0u) << "burst above capacity must shed";

  uint64_t shed_flagged = 0;
  for (const obs::RequestJourney& j : jc.snapshot_retained())
    if (j.flags & obs::RequestJourney::kFlagShed) {
      ++shed_flagged;
      EXPECT_EQ(j.status, static_cast<uint8_t>(Status::kBusy));
    }
  EXPECT_GT(shed_flagged, 0u) << "kBusy replies must leave retained evidence";
  svc.shutdown();
}

TEST(ServeJourney, TimeoutRetainedWithFlag) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 0;  // nothing ever executes
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 4, .timeout_ns = 50'000'000});

  std::string v;
  EXPECT_EQ(cli.get("never", v), Status::kTimeout);
  uint64_t timeout_flagged = 0;
  for (const obs::RequestJourney& j : jc.snapshot_retained())
    if (j.flags & obs::RequestJourney::kFlagTimeout) {
      ++timeout_flagged;
      EXPECT_NE(j.trace, 0u);
      EXPECT_NE(j.t_submit, 0u);
      EXPECT_EQ(j.total_ns(), 0u);  // no delivery stamp: the chain is partial
    }
  EXPECT_GE(timeout_flagged, 1u);
  EXPECT_EQ(jc.completed(), 0u);  // timeouts never pollute the stage histograms
  svc.shutdown();
}

TEST(ServeJourney, DisabledJourneysRecordNothing) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.journey_enabled = false;
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 8});

  for (int i = 0; i < 20; ++i)
    ASSERT_EQ(cli.put("k" + std::to_string(i), "v"), Status::kOk);
  EXPECT_EQ(jc.completed(), 0u);
  EXPECT_EQ(jc.retained(), 0u);
  EXPECT_EQ(jc.e2e_snapshot().count, 0u);
  svc.shutdown();
}

TEST(ServeJourney, SyncRetryRecoversFromBusy) {
  obs::JourneyCollector& jc = fresh_collector();
  rt::Cluster cluster(testing::small_cfg(1));  // one node: routing is local and
                                               // admission is deterministic
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 1;         // the async op below saturates admission
  cfg.worker_delay_ns = 20'000'000; // 20 ms: the sync attempt lands mid-stall
  cfg.client_retry_enabled = true;
  cfg.client_retry_max = 8;
  cfg.client_retry_base_ns = 2'000'000;
  cfg.client_retry_cap_ns = 10'000'000;  // total backoff budget >> the stall
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 4});

  OpHandle occupier = cli.async_put("occupier", "v");
  // Admission is at capacity until the occupier's 20 ms service time elapses:
  // the first sync attempt is shed, and the backoff schedule (2+4+8+10+...)
  // comfortably outlasts the stall, so the retry loop must land a kOk.
  EXPECT_EQ(cli.put("retry-me", "v"), Status::kOk);
  EXPECT_GE(svc.counters().client_retries.load(), 1u);
  EXPECT_EQ(occupier.get().status, Status::kOk);

  // Each resubmit is a fresh journey; the shed attempts left flagged evidence.
  uint64_t shed_flagged = 0;
  for (const obs::RequestJourney& j : jc.snapshot_retained())
    if (j.flags & obs::RequestJourney::kFlagShed) ++shed_flagged;
  EXPECT_GE(shed_flagged, 1u);
  svc.shutdown();
}

TEST(ServeJourney, AsyncApiNeverRetries) {
  rt::Cluster cluster(testing::small_cfg(1));
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  cfg.accept_queue_cap = 1;
  cfg.worker_delay_ns = 20'000'000;
  cfg.client_retry_enabled = true;  // the knob governs only the sync API
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 4});

  OpHandle occupier = cli.async_put("occupier", "v");
  OpHandle shed = cli.async_put("shed-me", "v");
  EXPECT_EQ(shed.get().status, Status::kBusy);  // surfaced, not retried
  EXPECT_EQ(svc.counters().client_retries.load(), 0u);
  EXPECT_EQ(occupier.get().status, Status::kOk);
  svc.shutdown();
}

}  // namespace
}  // namespace darray::serve
