// darray::Client + KvsService basics: typed round-trips, cross-node routing,
// pipelined FIFO ordering, the in-flight window, and payload guards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kvs/kvs.hpp"
#include "serve/client.hpp"
#include "tests/test_util.hpp"

namespace darray::serve {
namespace {

ServeConfig test_cfg() {
  ServeConfig cfg;
  cfg.workers_per_node = 1;
  return cfg;
}

kvs::KvsConfig tiny_kvs() {
  kvs::KvsConfig c;
  c.n_main_buckets = 64;
  c.n_overflow_buckets = 32;
  c.byte_capacity = 4 << 20;
  return c;
}

TEST(ServeClient, PutGetEraseRoundTrip) {
  rt::Cluster cluster(testing::small_cfg(2));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  Client cli = Client::connect(svc, {.node = 0});

  EXPECT_EQ(cli.put("alpha", "one"), Status::kOk);
  EXPECT_EQ(cli.put("alpha", "two"), Status::kOk);  // update in place
  std::string v;
  EXPECT_EQ(cli.get("alpha", v), Status::kOk);
  EXPECT_EQ(v, "two");
  EXPECT_EQ(cli.erase("alpha"), Status::kOk);
  EXPECT_EQ(cli.get("alpha", v), Status::kNotFound);
  EXPECT_EQ(cli.erase("alpha"), Status::kNotFound);
  svc.shutdown();
}

TEST(ServeClient, GetMissingIsNotFoundNotCrash) {
  rt::Cluster cluster(testing::small_cfg(2));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  Client cli = Client::connect(svc, {.node = 1});
  std::string v = "untouched";
  EXPECT_EQ(cli.get("never-written", v), Status::kNotFound);
  EXPECT_EQ(v, "untouched");
  svc.shutdown();
}

TEST(ServeClient, CrossNodeRouting) {
  // Writes from a session on each node are visible from sessions on every
  // other node: all traffic for a key converges on its owner's dispatcher.
  rt::Cluster cluster(testing::small_cfg(3));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  const uint32_t nodes = cluster.num_nodes();

  for (uint32_t n = 0; n < nodes; ++n) {
    Client cli = Client::connect(svc, {.node = n});
    for (int i = 0; i < 20; ++i) {
      const std::string key = "k" + std::to_string(n) + "-" + std::to_string(i);
      ASSERT_EQ(cli.put(key, "from" + std::to_string(n)), Status::kOk);
    }
  }
  for (uint32_t n = 0; n < nodes; ++n) {
    Client cli = Client::connect(svc, {.node = n});
    for (uint32_t w = 0; w < nodes; ++w) {
      for (int i = 0; i < 20; ++i) {
        std::string v;
        const std::string key = "k" + std::to_string(w) + "-" + std::to_string(i);
        ASSERT_EQ(cli.get(key, v), Status::kOk) << key;
        EXPECT_EQ(v, "from" + std::to_string(w));
      }
    }
  }
  // Both wire and local routes were exercised (keys owned by all nodes).
  EXPECT_GT(svc.counters().reqs_wire.load(), 0u);
  EXPECT_GT(svc.counters().reqs_local.load(), 0u);
  svc.shutdown();
}

TEST(ServeClient, PipelinedFifoPerSession) {
  // Per-session FIFO: a pipelined burst of puts to ONE key followed by a get
  // must observe the last put, even with several dispatcher workers.
  rt::Cluster cluster(testing::small_cfg(2));
  ServeConfig cfg = test_cfg();
  cfg.workers_per_node = 3;  // ordering must not depend on a single worker
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), cfg);
  Client cli = Client::connect(svc, {.node = 0, .window = 32});

  for (int round = 0; round < 10; ++round) {
    std::vector<OpHandle> hs;
    for (int i = 0; i <= 25; ++i)
      hs.push_back(cli.async_put("fifo-key", "v" + std::to_string(i)));
    OpHandle last = cli.async_get("fifo-key");
    for (auto& h : hs) EXPECT_EQ(h.get().status, Status::kOk);
    Response r = last.get();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.value, "v25") << "round " << round;
  }
  svc.shutdown();
}

TEST(ServeClient, WindowBoundsInflight) {
  // With window W, at most W ops are pending at any time; submits beyond the
  // window block until a harvest frees a slot, and all ops still complete.
  rt::Cluster cluster(testing::small_cfg(2));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  Client cli = Client::connect(svc, {.node = 0, .window = 4});

  std::vector<OpHandle> hs;
  for (int i = 0; i < 64; ++i)
    hs.push_back(cli.async_put("w" + std::to_string(i % 8), "x"));
  for (auto& h : hs) EXPECT_EQ(h.get().status, Status::kOk);
  svc.shutdown();
}

TEST(ServeClient, OversizedRequestIsTooLarge) {
  rt::Cluster cluster(testing::small_cfg(2));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  Client cli = Client::connect(svc, {.node = 0});
  // Larger than one fabric message: refused client-side with a typed error,
  // never posted, never aborts.
  const std::string huge(64 * 1024, 'x');
  EXPECT_EQ(cli.put("big", huge), Status::kTooLarge);
  EXPECT_EQ(cli.put("", "empty-key"), Status::kMalformed);
  std::string v;
  EXPECT_EQ(cli.get("big", v), Status::kNotFound);  // nothing was stored
  svc.shutdown();
}

TEST(ServeClient, ManySessionsSharedService) {
  rt::Cluster cluster(testing::small_cfg(2));
  auto svc = KvsService::create(cluster, kvs::DKvs::create(cluster, tiny_kvs()), test_cfg());
  {
    std::vector<Client> clients;
    for (int i = 0; i < 8; ++i)
      clients.push_back(Client::connect(svc, {.node = static_cast<rt::NodeId>(i % 2)}));
    for (size_t i = 0; i < clients.size(); ++i)
      EXPECT_EQ(clients[i].put("s" + std::to_string(i), "v"), Status::kOk);
  }
  EXPECT_EQ(svc.counters().sessions_opened.load(), 8u);
  svc.shutdown();
}

}  // namespace
}  // namespace darray::serve
