// SessionCore / SessionRegistry unit tests: seq→response matching, the
// in-flight window accounting across timeouts and late responses, and the
// journey records the completion path emits. The core's state is public and
// mutex-guarded, so the tests drive it directly — no cluster required.
#include <gtest/gtest.h>

#include <thread>

#include "common/histogram.hpp"  // now_ns
#include "obs/journey.hpp"
#include "serve/counters.hpp"
#include "serve/session.hpp"

namespace darray::serve {
namespace {

// Register `seq` as submitted, the way ServiceImpl::submit does.
void add_pending(SessionCore& core, uint64_t seq, uint64_t trace = 0,
                 uint64_t t_submit = 0, uint8_t op = 0) {
  std::lock_guard lk(core.mu);
  PendingOp p;
  p.trace = trace;
  p.t_submit = t_submit;
  p.op = op;
  core.pending.emplace(seq, std::move(p));
  ++core.inflight;
}

TEST(ServeSession, DeliverMatchesPendingAndFreesWindowSlot) {
  SessionCore core(0, 1, 4, 0);
  ServeCounters c;
  add_pending(core, 7);
  Response r;
  r.status = Status::kOk;
  r.value = "v";
  EXPECT_TRUE(core.deliver(7, std::move(r), c));
  std::lock_guard lk(core.mu);
  EXPECT_EQ(core.inflight, 0u);
  ASSERT_EQ(core.pending.count(7), 1u);  // entry stays until await consumes it
  EXPECT_TRUE(core.pending[7].done);
  EXPECT_EQ(core.pending[7].resp.status, Status::kOk);
  EXPECT_EQ(core.pending[7].resp.value, "v");
}

TEST(ServeSession, DeliverUnknownOrDoneSeqIsLate) {
  SessionCore core(0, 1, 4, 0);
  ServeCounters c;
  EXPECT_FALSE(core.deliver(99, Response{}, c));  // never submitted
  add_pending(core, 1);
  Response first;
  first.status = Status::kOk;
  EXPECT_TRUE(core.deliver(1, std::move(first), c));
  Response dup;
  dup.status = Status::kOk;
  EXPECT_FALSE(core.deliver(1, std::move(dup), c));  // duplicate: already done
}

TEST(ServeSession, BusyRepliesAreCounted) {
  SessionCore core(0, 1, 4, 0);
  ServeCounters c;
  add_pending(core, 1);
  Response r;
  r.status = Status::kBusy;
  EXPECT_TRUE(core.deliver(1, std::move(r), c));
  EXPECT_EQ(c.busy_replies.load(), 1u);
}

TEST(ServeSession, AwaitConsumedSeqReturnsTimeout) {
  SessionCore core(0, 1, 4, 0);
  // Nothing pending under this seq (already consumed or never submitted):
  // await must not block, and the typed answer is kTimeout.
  EXPECT_EQ(core.await(5).status, Status::kTimeout);
}

TEST(ServeSession, AwaitTimesOutReclaimsWindowAndDropsLateResponse) {
  SessionCore core(0, 1, 4, /*timeout_ns=*/20'000'000);
  ServeCounters c;
  add_pending(core, 3);
  EXPECT_EQ(core.await(3).status, Status::kTimeout);
  {
    std::lock_guard lk(core.mu);
    EXPECT_EQ(core.inflight, 0u);  // the slot the response never freed
    EXPECT_TRUE(core.pending.empty());
  }
  // The response that eventually shows up finds nobody waiting: late, not lost.
  Response r;
  r.status = Status::kOk;
  EXPECT_FALSE(core.deliver(3, std::move(r), c));
}

TEST(ServeSession, TimeoutRetainsPartialJourney) {
  obs::JourneyCollector& jc = obs::journey_collector();
  jc.reset();
  jc.configure(true, 8, 0);
  SessionCore core(2, 9, 4, /*timeout_ns=*/20'000'000);
  add_pending(core, 4, /*trace=*/0x77, /*t_submit=*/now_ns(), /*op=*/1);
  EXPECT_EQ(core.await(4).status, Status::kTimeout);
  EXPECT_EQ(jc.completed(), 0u);  // no stamp chain: histograms untouched
  ASSERT_EQ(jc.retained(), 1u);
  const auto kept = jc.snapshot_retained();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].trace, 0x77u);
  EXPECT_EQ(kept[0].flags, obs::RequestJourney::kFlagTimeout);
  EXPECT_EQ(kept[0].origin, 2u);
  EXPECT_EQ(kept[0].session, 9u);
  EXPECT_EQ(kept[0].seq, 4u);
  jc.reset();
  jc.configure(false, 8, 0);
}

TEST(ServeSession, DeliverCompletesJourneyChain) {
  obs::JourneyCollector& jc = obs::journey_collector();
  jc.reset();
  jc.configure(true, 8, 1);  // floor 1 ns: the completion is retained too
  SessionCore core(0, 1, 4, 0);
  ServeCounters c;
  const uint64_t base = now_ns();
  add_pending(core, 6, /*trace=*/0x55, /*t_submit=*/base - 600'000, /*op=*/0);
  Response r;
  r.status = Status::kOk;
  r.j.t_admit = base - 500'000;
  r.j.t_dequeue = base - 400'000;
  r.j.t_backend = base - 200'000;
  r.j.t_resp_rx = base - 50'000;
  r.j.owner = 1;
  EXPECT_TRUE(core.deliver(6, std::move(r), c));
  EXPECT_EQ(jc.completed(), 1u);
  EXPECT_EQ(jc.stage_snapshot(obs::JourneyStage::kAdmit).sum_ns, 100'000u);
  EXPECT_EQ(jc.stage_snapshot(obs::JourneyStage::kQueue).sum_ns, 100'000u);
  EXPECT_EQ(jc.stage_snapshot(obs::JourneyStage::kBackend).sum_ns, 200'000u);
  EXPECT_EQ(jc.stage_snapshot(obs::JourneyStage::kNet).sum_ns, 150'000u);
  // deliver stage ends at deliver()'s own now_ns(): positive, unbounded above.
  EXPECT_EQ(jc.stage_snapshot(obs::JourneyStage::kDeliver).count, 1u);
  const auto kept = jc.snapshot_retained();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].owner, 1u);
  EXPECT_EQ(kept[0].status, static_cast<uint8_t>(Status::kOk));
  jc.reset();
  jc.configure(false, 8, 0);
}

TEST(ServeSession, DeliverWakesBlockedWaiter) {
  SessionCore core(0, 1, 4, 0);  // timeout 0: wait forever
  ServeCounters c;
  add_pending(core, 2);
  std::thread waiter([&] { EXPECT_EQ(core.await(2).status, Status::kOk); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Response r;
  r.status = Status::kOk;
  EXPECT_TRUE(core.deliver(2, std::move(r), c));
  waiter.join();
  std::lock_guard lk(core.mu);
  EXPECT_TRUE(core.pending.empty());
  EXPECT_EQ(core.inflight, 0u);
}

TEST(ServeSessionRegistry, OpenFindCloseLifecycle) {
  SessionRegistry reg;
  auto a = reg.open(0, 16, 0);
  auto b = reg.open(1, 8, 1'000'000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id, b->id);
  EXPECT_NE(a->id, 0u);  // 0 is reserved: "no session"
  EXPECT_EQ(reg.find(a->id), a);
  EXPECT_EQ(reg.find(b->id), b);
  EXPECT_EQ(b->window, 8u);
  EXPECT_EQ(b->timeout_ns, 1'000'000u);

  reg.close(a->id);
  EXPECT_EQ(reg.find(a->id), nullptr);  // responses for it now count as late
  EXPECT_EQ(reg.find(b->id), b);        // other sessions unaffected
  reg.close(b->id);
  EXPECT_EQ(reg.find(b->id), nullptr);
}

TEST(ServeSessionRegistry, ClosedSessionCoreOutlivesRegistryEntry) {
  // A response can race session close: the shared_ptr the responder already
  // holds must stay valid and deliverable even after close() drops the entry.
  SessionRegistry reg;
  auto core = reg.open(0, 4, 0);
  add_pending(*core, 1);
  reg.close(core->id);
  ServeCounters c;
  Response r;
  r.status = Status::kOk;
  EXPECT_TRUE(core->deliver(1, std::move(r), c));
}

}  // namespace
}  // namespace darray::serve
