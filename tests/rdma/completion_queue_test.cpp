#include "rdma/completion_queue.hpp"

#include <gtest/gtest.h>

namespace darray::rdma {
namespace {

WorkCompletion wc_at(uint64_t wr_id, uint64_t deliver_at = 0) {
  WorkCompletion wc;
  wc.wr_id = wr_id;
  wc.deliver_at_ns = deliver_at;
  return wc;
}

TEST(CompletionQueue, EmptyPollReturnsZero) {
  CompletionQueue cq;
  WorkCompletion out[4];
  EXPECT_EQ(cq.poll(out), 0u);
  EXPECT_EQ(cq.next_due_in(), ~0ull);
}

TEST(CompletionQueue, DeliversDueEntriesInOrder) {
  CompletionQueue cq;
  for (uint64_t i = 0; i < 5; ++i) cq.push(wc_at(i));
  WorkCompletion out[8];
  ASSERT_EQ(cq.poll(out), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].wr_id, i);
}

TEST(CompletionQueue, RespectsBatchLimit) {
  CompletionQueue cq;
  for (uint64_t i = 0; i < 10; ++i) cq.push(wc_at(i));
  WorkCompletion out[3];
  EXPECT_EQ(cq.poll(out), 3u);
  EXPECT_EQ(cq.poll(out), 3u);
  EXPECT_EQ(out[0].wr_id, 3u);
}

TEST(CompletionQueue, HoldsBackFutureEntries) {
  CompletionQueue cq;
  cq.push(wc_at(1, now_ns() + 50'000'000));  // 50 ms in the future
  WorkCompletion out[1];
  EXPECT_EQ(cq.poll(out), 0u);
  const uint64_t due = cq.next_due_in();
  EXPECT_GT(due, 0u);
  EXPECT_LE(due, 50'000'000u);
}

TEST(CompletionQueue, UndueEntryDoesNotBlockDueOnes) {
  // Shared-CQ contract: an entry held back for the future (e.g. a
  // chaos-delayed WR on one QP) must not head-of-line-block due completions
  // from other QPs sharing the CQ.
  CompletionQueue cq;
  cq.push(wc_at(1, now_ns() + 30'000'000));
  cq.push(wc_at(2, 0));
  WorkCompletion out[2];
  ASSERT_EQ(cq.poll(out), 1u);
  EXPECT_EQ(out[0].wr_id, 2u);
  // The delayed entry stays held back.
  EXPECT_EQ(cq.poll(out), 0u);
  EXPECT_GT(cq.next_due_in(), 0u);
}

TEST(CompletionQueue, HoldbackEmitsByDeadlineOrder) {
  // Entries already due emit in push order; held-back entries emit sorted by
  // deadline once due, with push order as the tiebreak (stable insert).
  CompletionQueue cq;
  const uint64_t now = now_ns();
  cq.push(wc_at(1, now + 3'000'000));
  cq.push(wc_at(2, now + 1'000'000));
  cq.push(wc_at(3, now + 1'000'000));
  WorkCompletion out[4];
  ASSERT_EQ(cq.poll(out), 0u);
  // Wait until all three deadlines have passed.
  while (now_ns() < now + 3'000'000) {
  }
  ASSERT_EQ(cq.poll(out), 3u);
  EXPECT_EQ(out[0].wr_id, 2u);
  EXPECT_EQ(out[1].wr_id, 3u);
  EXPECT_EQ(out[2].wr_id, 1u);
}

TEST(CompletionQueue, ExternalDoorbellRungOnPush) {
  Doorbell bell;
  CompletionQueue cq(&bell);
  const uint32_t snap = bell.snapshot();
  cq.push(wc_at(1));
  EXPECT_NE(bell.snapshot(), snap);
}

}  // namespace
}  // namespace darray::rdma
