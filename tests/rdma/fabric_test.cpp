#include "rdma/fabric.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace darray::rdma {
namespace {

struct Wired {
  Fabric fabric;
  Device* da;
  Device* db;
  CompletionQueue a_send, a_recv, b_send, b_recv;
  QueuePair* qa;
  QueuePair* qb;

  explicit Wired(FabricConfig cfg = {}) : fabric(cfg) {
    da = fabric.create_device(0);
    db = fabric.create_device(1);
    auto [x, y] = fabric.connect(da, &a_send, &a_recv, db, &b_send, &b_recv);
    qa = x;
    qb = y;
  }
};

TEST(Fabric, OneSidedWriteLandsInRemoteMemory) {
  Wired w;
  std::vector<std::byte> src(64), dst(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 64);
  MemoryRegion md = w.db->reg_mr(dst.data(), 64);
  std::memset(src.data(), 0xAB, 64);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {src.data(), 64, ms.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = md.rkey;
  wr.wr_id = 1;
  ASSERT_TRUE(w.qa->post_send(wr));

  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 64), 0);

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.opcode, Opcode::kWrite);
  EXPECT_EQ(wc.wr_id, 1u);
}

TEST(Fabric, WriteWithBadRkeyFailsCompletion) {
  Wired w;
  std::vector<std::byte> src(64), dst(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 64);
  (void)w.db->reg_mr(dst.data(), 64);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {src.data(), 64, ms.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = 0xdead;
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST(Fabric, ReadPullsRemoteMemory) {
  Wired w;
  std::vector<std::byte> local(32), remote(32);
  MemoryRegion ml = w.da->reg_mr(local.data(), 32);
  MemoryRegion mr = w.db->reg_mr(remote.data(), 32);
  std::memset(remote.data(), 0x5C, 32);

  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.sge = {local.data(), 32, ml.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(remote.data());
  wr.rkey = mr.rkey;
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(local.data(), remote.data(), 32), 0);
}

TEST(Fabric, SendConsumesPostedRecv) {
  Wired w;
  std::vector<std::byte> src(16), rbuf(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 16);
  MemoryRegion mr = w.db->reg_mr(rbuf.data(), 64);
  std::memset(src.data(), 0x42, 16);

  w.qb->post_recv({.wr_id = 77, .addr = rbuf.data(), .length = 64, .lkey = mr.lkey});

  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 16, ms.lkey};
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  ASSERT_EQ(w.b_recv.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.opcode, Opcode::kRecv);
  EXPECT_EQ(wc.wr_id, 77u);
  EXPECT_EQ(wc.byte_len, 16u);
  EXPECT_EQ(wc.peer_node, 0u);
  EXPECT_EQ(std::memcmp(rbuf.data(), src.data(), 16), 0);
}

TEST(Fabric, SendWithoutRecvIsRnrError) {
  Wired w;
  std::vector<std::byte> src(16);
  MemoryRegion ms = w.da->reg_mr(src.data(), 16);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 16, ms.lkey};
  wr.signaled = false;  // errors are always surfaced
  ASSERT_TRUE(w.qa->post_send(wr));
  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRnrError);
}

TEST(Fabric, UnsignaledSendProducesNoCompletion) {
  Wired w;
  std::vector<std::byte> src(8), rbuf(8);
  MemoryRegion ms = w.da->reg_mr(src.data(), 8);
  MemoryRegion mr = w.db->reg_mr(rbuf.data(), 8);
  w.qb->post_recv({.wr_id = 1, .addr = rbuf.data(), .length = 8, .lkey = mr.lkey});

  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 8, ms.lkey};
  wr.signaled = false;
  ASSERT_TRUE(w.qa->post_send(wr));
  WorkCompletion wc;
  EXPECT_EQ(w.a_send.poll({&wc, 1}), 0u);   // no sender CQE
  EXPECT_EQ(w.b_recv.poll({&wc, 1}), 1u);   // receiver still notified
}

TEST(Fabric, FifoOrderPerQp) {
  Wired w;
  std::vector<std::byte> src(8), rbufs(8 * 10);
  MemoryRegion ms = w.da->reg_mr(src.data(), 8);
  MemoryRegion mr = w.db->reg_mr(rbufs.data(), rbufs.size());
  for (uint64_t i = 0; i < 10; ++i)
    w.qb->post_recv({.wr_id = i, .addr = rbufs.data() + i * 8, .length = 8, .lkey = mr.lkey});

  for (int i = 0; i < 10; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.sge = {src.data(), 8, ms.lkey};
    ASSERT_TRUE(w.qa->post_send(wr));
  }
  WorkCompletion wcs[10];
  ASSERT_EQ(w.b_recv.poll(wcs), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(wcs[i].wr_id, i);
}

TEST(Fabric, StatsCountMessagesAndBytes) {
  Wired w;
  std::vector<std::byte> src(100), dst(100);
  MemoryRegion ms = w.da->reg_mr(src.data(), 100);
  MemoryRegion md = w.db->reg_mr(dst.data(), 100);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {src.data(), 100, ms.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = md.rkey;
  ASSERT_TRUE(w.qa->post_send(wr));

  FabricStats s = w.fabric.stats();
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_written, 100u);
  EXPECT_EQ(s.total_messages(), 1u);

  w.fabric.reset_stats();
  EXPECT_EQ(w.fabric.stats().total_messages(), 0u);
}

TEST(Fabric, LatencyDelaysDelivery) {
  Wired w({.latency_ns = 2'000'000});  // 2 ms one-way
  std::vector<std::byte> src(8), rbuf(8);
  MemoryRegion ms = w.da->reg_mr(src.data(), 8);
  MemoryRegion mr = w.db->reg_mr(rbuf.data(), 8);
  w.qb->post_recv({.wr_id = 9, .addr = rbuf.data(), .length = 8, .lkey = mr.lkey});

  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 8, ms.lkey};
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  EXPECT_EQ(w.b_recv.poll({&wc, 1}), 0u) << "delivered before the latency elapsed";
  EXPECT_GT(w.b_recv.next_due_in(), 0u);
  const uint64_t start = now_ns();
  while (w.b_recv.poll({&wc, 1}) == 0) {
    ASSERT_LT(now_ns() - start, 5'000'000'000ull) << "latency holdback never released";
  }
  EXPECT_GE(now_ns() - start + 1'000'000, 1'000'000ull);  // sanity: some delay happened
  EXPECT_EQ(wc.wr_id, 9u);
}

TEST(Fabric, PeerNodeIds) {
  Wired w;
  EXPECT_EQ(w.qa->peer_node(), 1u);
  EXPECT_EQ(w.qb->peer_node(), 0u);
}

}  // namespace
}  // namespace darray::rdma
