#include "rdma/device.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace darray::rdma {
namespace {

TEST(Device, RegisterAndTranslate) {
  Device dev(0);
  std::vector<std::byte> buf(1024);
  MemoryRegion mr = dev.reg_mr(buf.data(), buf.size());
  EXPECT_NE(mr.lkey, 0u);

  std::byte* p = dev.translate(reinterpret_cast<uint64_t>(buf.data()), mr.rkey, 1024);
  EXPECT_EQ(p, buf.data());
  p = dev.translate(reinterpret_cast<uint64_t>(buf.data() + 512), mr.rkey, 512);
  EXPECT_EQ(p, buf.data() + 512);
}

TEST(Device, TranslateRejectsOutOfBounds) {
  Device dev(0);
  std::vector<std::byte> buf(1024);
  MemoryRegion mr = dev.reg_mr(buf.data(), buf.size());
  // One byte past the end.
  EXPECT_EQ(dev.translate(reinterpret_cast<uint64_t>(buf.data() + 1), mr.rkey, 1024), nullptr);
  // Before the start.
  EXPECT_EQ(dev.translate(reinterpret_cast<uint64_t>(buf.data()) - 8, mr.rkey, 8), nullptr);
}

TEST(Device, TranslateRejectsBadRkey) {
  Device dev(0);
  std::vector<std::byte> buf(64);
  MemoryRegion mr = dev.reg_mr(buf.data(), buf.size());
  EXPECT_EQ(dev.translate(reinterpret_cast<uint64_t>(buf.data()), mr.rkey + 77, 8), nullptr);
}

TEST(Device, DeregisterInvalidatesKey) {
  Device dev(0);
  std::vector<std::byte> buf(64);
  MemoryRegion mr = dev.reg_mr(buf.data(), buf.size());
  dev.dereg_mr(mr.lkey);
  EXPECT_EQ(dev.translate(reinterpret_cast<uint64_t>(buf.data()), mr.rkey, 8), nullptr);
}

TEST(Device, ValidateLocalSge) {
  Device dev(0);
  std::vector<std::byte> buf(128);
  MemoryRegion mr = dev.reg_mr(buf.data(), buf.size());
  EXPECT_TRUE(dev.validate_local({buf.data(), 128, mr.lkey}));
  EXPECT_FALSE(dev.validate_local({buf.data(), 129, mr.lkey}));
  EXPECT_FALSE(dev.validate_local({buf.data(), 8, mr.lkey + 1}));
}

TEST(Device, MultipleRegionsIndependent) {
  Device dev(0);
  std::vector<std::byte> a(64), b(64);
  MemoryRegion ma = dev.reg_mr(a.data(), 64);
  MemoryRegion mb = dev.reg_mr(b.data(), 64);
  EXPECT_NE(ma.rkey, mb.rkey);
  // a's address under b's key is invalid.
  EXPECT_EQ(dev.translate(reinterpret_cast<uint64_t>(a.data()), mb.rkey, 8), nullptr);
  EXPECT_NE(dev.translate(reinterpret_cast<uint64_t>(b.data()), mb.rkey, 8), nullptr);
}

}  // namespace
}  // namespace darray::rdma
