// Figure 17: YCSB throughput (Kops/s) of the DArray-based KVS vs the
// GAM-based KVS, sweeping threads per node and the get ratio
// (Zipfian 0.99, the paper's six-node setup scaled by DARRAY_BENCH_NODES).
// Both engines are driven through the darray::Client serve path — the same
// front door applications use — so the comparison includes session and
// dispatch overhead on both sides.
//
// Paper shape: DArray-KVS wins everywhere — 20x-41x at 100% gets, 2x-3.8x
// under PUT-heavy contention — with better thread scaling (lock-free access
// path vs per-access locks).
#include "bench/bench_util.hpp"
#include "kvs/kvs.hpp"
#include "serve/ycsb_serve.hpp"

using namespace darray;
using namespace darray::bench;
using namespace darray::kvs;
using namespace darray::serve;

namespace {

template <typename Kvs>
double run(uint32_t nodes, uint32_t threads, double get_ratio) {
  rt::Cluster cluster(bench_cfg(nodes));
  KvsConfig kcfg;
  kcfg.n_main_buckets = 1 << 10;
  kcfg.byte_capacity = 32ull << 20;
  ServeConfig scfg;
  scfg.accept_queue_cap = 0;  // closed loop: measure raw path, don't shed
  scfg.workers_per_node = std::max<uint32_t>(1, threads / 2);
  auto svc = KvsService::create(cluster, Kvs::create(cluster, kcfg), scfg);
  YcsbConfig cfg;
  cfg.n_keys = env_u64("DARRAY_BENCH_KEYS", 4000);
  cfg.get_ratio = get_ratio;
  cfg.threads_per_node = threads;
  cfg.ops_per_thread = env_u64("DARRAY_BENCH_KVS_OPS", 1500);
  ycsb_load_serve(svc, cfg);
  const double kops = run_ycsb_serve(svc, cfg).kops;
  svc.shutdown();
  return kops;
}

}  // namespace

int main() {
  const uint32_t nodes = std::min<uint32_t>(3, max_nodes());
  std::vector<uint64_t> threads;
  for (uint64_t t = 1; t <= max_threads(); t *= 2) threads.push_back(t);
  const double ratios[] = {1.0, 0.95, 0.5};

  std::printf("=== Figure 17: KVS YCSB throughput (Kops/s), zipfian 0.99, %u nodes, "
              "serve path ===\n",
              nodes);
  for (double ratio : ratios) {
    char title[64];
    std::snprintf(title, sizeof(title), "get ratio = %.0f%%", ratio * 100);
    print_header(title, {"threads", "DArray-KVS", "GAM-KVS", "speedup"});
    for (uint64_t t : threads) {
      const double d = run<DKvs>(nodes, static_cast<uint32_t>(t), ratio);
      const double g = run<GamKvs>(nodes, static_cast<uint32_t>(t), ratio);
      print_row(t, {d, g, d / g}, "%14.1f");
    }
  }
  std::printf("\nexpected shape: both engines sit on the same substrate and pay the "
              "same serve+bucket-lock RPC costs, so speedup hovers near 1x on this "
              "host (EXPERIMENTS.md fig17: honest divergence) with DArray-KVS "
              "trending ahead as threads grow; the paper's 20x-41x gap comes from "
              "GAM's heavier access path, isolated by micro_fastpath instead.\n");
  return 0;
}
