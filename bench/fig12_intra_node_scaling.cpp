// Figure 12: sequential (a) Read (b) Write (c) Operate throughput (Mops/s)
// as the number of threads per node grows, on 3 nodes.
//
// Paper shape: DArray > GAM > BCL for Read/Write, with DArray's lead growing
// with threads (lock-free vs lock-based access path); for Operate, DArray's
// combine beats GAM's exclusive-ownership atomics by a wide margin; BCL's
// thread scaling is poor (serialised RMA).
#include "bench/bench_util.hpp"
#include "baselines/bcl/bcl_array.hpp"
#include "baselines/gam/gam_array.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

uint64_t add_fn_gam(uint64_t a, uint64_t b) { return a + b; }
void add_fn(uint64_t& a, uint64_t b) { a += b; }

enum class Op { kRead, kWrite, kOperate };

double run_darray(uint32_t nodes, uint32_t threads, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = DArray<uint64_t>::create(cluster, total);
  const auto add = arr.register_op(&add_fn, 0);
  return measure_mops(cluster, threads, total, [&](rt::NodeId, uint32_t, uint64_t i) {
    switch (op) {
      case Op::kRead: {
        volatile uint64_t v = arr.get(i);
        (void)v;
        break;
      }
      case Op::kWrite: arr.set(i, i); break;
      case Op::kOperate: arr.apply(i, add, 1); break;
    }
  });
}

double run_gam(uint32_t nodes, uint32_t threads, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = gam::GamArray<uint64_t>::create(cluster, total);
  return measure_mops(cluster, threads, total, [&](rt::NodeId, uint32_t, uint64_t i) {
    switch (op) {
      case Op::kRead: {
        volatile uint64_t v = arr.get(i);
        (void)v;
        break;
      }
      case Op::kWrite: arr.set(i, i); break;
      case Op::kOperate: arr.atomic_rmw(i, &add_fn_gam, 1); break;
    }
  });
}

double run_bcl(uint32_t nodes, uint32_t threads, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = bcl::BclArray<uint64_t>::create(cluster, total);
  // Keep BCL runs bounded: every remote op is a full round trip.
  const uint64_t ops = std::min<uint64_t>(total, 8192);
  return measure_mops(cluster, threads, ops, [&](rt::NodeId, uint32_t, uint64_t i) {
    if (op == Op::kRead) {
      volatile uint64_t v = arr.get(i);
      (void)v;
    } else {
      arr.set(i, i);
    }
  });
}

void panel(const char* title, Op op, uint32_t nodes, const std::vector<uint64_t>& threads) {
  const bool has_bcl = op != Op::kOperate;
  print_header(title, has_bcl ? std::vector<std::string>{"threads", "DArray", "GAM", "BCL"}
                              : std::vector<std::string>{"threads", "DArray", "GAM"});
  for (uint64_t t : threads) {
    std::vector<double> row{run_darray(nodes, static_cast<uint32_t>(t), op),
                            run_gam(nodes, static_cast<uint32_t>(t), op)};
    if (has_bcl) row.push_back(run_bcl(nodes, static_cast<uint32_t>(t), op));
    print_row(t, row, "%14.3f");
  }
}

}  // namespace

int main() {
  const uint32_t nodes = std::min<uint32_t>(3, max_nodes());
  std::vector<uint64_t> threads;
  for (uint64_t t = 1; t <= max_threads(); t *= 2) threads.push_back(t);

  std::printf("=== Figure 12: sequential throughput vs threads (Mops/s, %u nodes) ===\n",
              nodes);
  panel("(a) Read", Op::kRead, nodes, threads);
  panel("(b) Write", Op::kWrite, nodes, threads);
  panel("(c) Operate (GAM = exclusive atomic)", Op::kOperate, nodes, threads);
  std::printf("\nexpected shape: DArray > GAM > BCL throughout; the DArray:GAM gap widens "
              "with threads.\n");
  return 0;
}
