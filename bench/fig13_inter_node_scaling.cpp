// Figure 13: sequential (a) Read (b) Write (c) Operate throughput (Mops/s) as
// the node count grows, one thread per node; the array grows linearly with
// the node count (the paper adds 0.78 GB/node; we add DARRAY_BENCH_ELEMS).
//
// Paper shape: DArray scales best (ratios ≈ 0.8), GAM lower (≈ 0.7), BCL flat
// and far below (≈ 0.5). The bench prints the same scalability ratios.
#include "bench/bench_util.hpp"
#include "baselines/bcl/bcl_array.hpp"
#include "baselines/gam/gam_array.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

void add_fn(uint64_t& a, uint64_t b) { a += b; }
uint64_t add_fn_gam(uint64_t a, uint64_t b) { return a + b; }

enum class Op { kRead, kWrite, kOperate };

double run(const char* system, uint32_t nodes, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  const std::string sys(system);
  if (sys == "darray") {
    auto arr = DArray<uint64_t>::create(cluster, total);
    const auto add = arr.register_op(&add_fn, 0);
    return measure_mops(cluster, 1, total, [&](rt::NodeId, uint32_t, uint64_t i) {
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(i);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(i, i); break;
        case Op::kOperate: arr.apply(i, add, 1); break;
      }
    });
  }
  if (sys == "gam") {
    auto arr = gam::GamArray<uint64_t>::create(cluster, total);
    return measure_mops(cluster, 1, total, [&](rt::NodeId, uint32_t, uint64_t i) {
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(i);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(i, i); break;
        case Op::kOperate: arr.atomic_rmw(i, &add_fn_gam, 1); break;
      }
    });
  }
  auto arr = bcl::BclArray<uint64_t>::create(cluster, total);
  const uint64_t ops = std::min<uint64_t>(total, 8192);
  return measure_mops(cluster, 1, ops, [&](rt::NodeId, uint32_t, uint64_t i) {
    if (op == Op::kRead) {
      volatile uint64_t v = arr.get(i);
      (void)v;
    } else {
      arr.set(i, i);
    }
  });
}

void panel(const char* title, Op op, const std::vector<uint64_t>& node_counts) {
  const bool has_bcl = op != Op::kOperate;
  print_header(title, has_bcl ? std::vector<std::string>{"nodes", "DArray", "GAM", "BCL"}
                              : std::vector<std::string>{"nodes", "DArray", "GAM"});
  std::vector<double> d, g, b;
  for (uint64_t n : node_counts) {
    d.push_back(run("darray", static_cast<uint32_t>(n), op));
    g.push_back(run("gam", static_cast<uint32_t>(n), op));
    std::vector<double> row{d.back(), g.back()};
    if (has_bcl) {
      b.push_back(run("bcl", static_cast<uint32_t>(n), op));
      row.push_back(b.back());
    }
    print_row(n, row, "%14.3f");
  }
  std::printf("scalability ratio: DArray %.2f, GAM %.2f", scalability_ratio(node_counts, d),
              scalability_ratio(node_counts, g));
  if (has_bcl) std::printf(", BCL %.2f", scalability_ratio(node_counts, b));
  std::printf("   (paper: DArray .82/.76/.87, GAM .72/.68/.73, BCL .52/.52)\n");
}

// --json: DArray throughput at the largest node count per op, for both
// coalesce configs (off first = pre-engine baseline). The largest point has
// the most inter-node protocol traffic, so it is where coalescing shows.
int json_main() {
  JsonReport report("fig13_inter_node_scaling", true);
  const uint32_t nodes = max_nodes();
  for (const bool coalesce : {false, true}) {
    setenv("DARRAY_BENCH_COALESCE", coalesce ? "1" : "0", 1);
    const std::string cfg = coalesce ? "coalesce_on" : "coalesce_off";
    report.measure(cfg, "darray_read", "Mops/s", [&] { return run("darray", nodes, Op::kRead); });
    report.measure(cfg, "darray_write", "Mops/s",
                   [&] { return run("darray", nodes, Op::kWrite); });
    report.measure(cfg, "darray_operate", "Mops/s",
                   [&] { return run("darray", nodes, Op::kOperate); });
  }
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--json")) return json_main();
  std::vector<uint64_t> node_counts;
  for (uint64_t n = 1; n <= max_nodes(); ++n) node_counts.push_back(n);

  std::printf("=== Figure 13: sequential throughput vs nodes (Mops/s, 1 thread/node) ===\n");
  std::printf("note: on a host with fewer cores than simulated threads, aggregate\n"
              "throughput is CPU-capacity-bound and cannot grow with node count, so the\n"
              "paper's scalability ratios are not reproducible — the per-point system\n"
              "ordering (DArray > GAM > BCL) is the preserved shape. Run on >= %u cores\n"
              "for meaningful ratios.\n",
              max_nodes() * 3);
  panel("(a) Read", Op::kRead, node_counts);
  panel("(b) Write", Op::kWrite, node_counts);
  panel("(c) Operate", Op::kOperate, node_counts);
  return 0;
}
