// Ablations of the runtime's design choices (not a paper figure; DESIGN.md's
// per-design-choice sweep): chunk size, prefetch depth, eviction watermarks,
// and selective-signaling interval. Reports throughput plus the runtime
// counters that explain it.
#include "bench/bench_util.hpp"
#include "core/darray.hpp"
#include "net/payload_buf.hpp"
#include "rdma/verbs.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

struct Result {
  double mops;
  rt::RuntimeStats stats;
  rdma::FabricStats fabric;
};

// Remote sequential read sweep — the workload most sensitive to the cache
// configuration under test.
Result sweep(rt::ClusterConfig cfg) {
  cfg.num_nodes = 2;
  rt::Cluster cluster(cfg);
  const uint64_t total = elems_per_node() * 2;
  auto arr = DArray<uint64_t>::create(cluster, total);
  const double mops =
      measure_mops(cluster, 1, total / 2, [&](rt::NodeId n, uint32_t, uint64_t i) {
        // Each node sweeps the OTHER node's half: all misses are remote.
        const uint64_t base = n == 0 ? arr.local_begin(1) : arr.local_begin(0);
        volatile uint64_t v = arr.get(base + i);
        (void)v;
      });
  return {mops, cluster.runtime_stats(), cluster.fabric().stats()};
}

void print_result(uint64_t x, const Result& r) {
  std::printf("%-12llu%12.3f%12llu%12llu%12llu%12llu\n",
              static_cast<unsigned long long>(x), r.mops,
              static_cast<unsigned long long>(r.stats.local_read_misses),
              static_cast<unsigned long long>(r.stats.fills),
              static_cast<unsigned long long>(r.stats.prefetches_issued),
              static_cast<unsigned long long>(r.stats.total_evictions()));
  std::fflush(stdout);
}

void header(const char* title) {
  std::printf("\n%s\n%-12s%12s%12s%12s%12s%12s\n", title, "value", "Mops/s", "misses",
              "fills", "prefetch", "evictions");
}

}  // namespace

int main() {
  std::printf("=== Runtime ablations (2 nodes, remote sequential read sweep) ===\n");

  header("(a) chunk size (elements) — paper default 512");
  for (uint32_t chunk : {64u, 128u, 256u, 512u, 1024u}) {
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.chunk_elems = chunk;
    print_result(chunk, sweep(cfg));
  }

  header("(b) prefetch depth (chunks) — §4.2, default 2");
  for (uint32_t pf : {0u, 1u, 2u, 4u, 8u}) {
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.prefetch_chunks = pf;
    print_result(pf, sweep(cfg));
  }

  header("(c) cache size (lines/region) — watermarks 30%/50%");
  for (uint32_t lines : {8u, 16u, 32u, 64u, 256u}) {
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.cachelines_per_region = lines;
    print_result(lines, sweep(cfg));
  }

  header("(d) selective signaling interval — §4.5, default 16");
  for (uint32_t sig : {1u, 4u, 16u, 64u}) {
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.selective_signal_interval = sig;
    print_result(sig, sweep(cfg));
  }

  // Small-message engine (docs/perf.md): per-peer SEND coalescing packs
  // protocol messages into shared wire SENDs, doorbell batching posts runs of
  // WRs with one call, and PayloadBuf keeps Tx/Rx payloads out of the heap.
  std::printf("\n(e) small-message coalescing — docs/perf.md, default on\n"
              "%-12s%12s%12s%12s%12s%12s%12s\n", "max_frames", "Mops/s", "sends",
              "coalesced", "batchposts", "pool_hits", "pool_miss");
  for (uint32_t frames : {0u, 2u, 8u, 32u}) {  // 0 = coalescing disabled
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.coalesce_enabled = frames > 0;
    if (frames > 0) cfg.coalesce_max_frames = frames;
    const net::PayloadPoolStats before = net::payload_pool_stats();
    const Result r = sweep(cfg);
    const net::PayloadPoolStats after = net::payload_pool_stats();
    std::printf("%-12llu%12.3f%12llu%12llu%12llu%12llu%12llu\n",
                static_cast<unsigned long long>(frames), r.mops,
                static_cast<unsigned long long>(r.fabric.sends),
                static_cast<unsigned long long>(r.fabric.coalesced_frames),
                static_cast<unsigned long long>(r.fabric.batched_posts),
                static_cast<unsigned long long>(after.hits - before.hits),
                static_cast<unsigned long long>(after.misses - before.misses));
    std::fflush(stdout);
  }

  std::printf("\nreading: larger chunks amortise misses until eviction pressure bites;\n"
              "prefetch trades extra fills for fewer demand misses; a cache smaller than\n"
              "the working set turns the sweep into eviction churn; signaling interval 1\n"
              "maximises completion traffic.\n");
  return 0;
}
