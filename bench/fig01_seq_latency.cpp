// Figure 1: average latency of 8-byte sequential access over the entire
// array, on a single machine and on a distributed cluster, for BCL, GAM,
// DArray and DArray-Pin.
//
// Paper shape to reproduce: distributed BCL ≈ RDMA round trip (no cache);
// GAM well below BCL (cache) but above DArray (locked access path); DArray-Pin
// lowest (atomic-free fast path). On a single machine BCL/DArray are near
// native while GAM pays its lock.
#include "bench/bench_util.hpp"
#include "baselines/bcl/bcl_array.hpp"
#include "baselines/gam/gam_array.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

double darray_seq_ns(uint32_t nodes, bool use_pin) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = DArray<uint64_t>::create(cluster, total);
  const uint32_t chunk = arr.meta().chunk_elems;
  return measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
    if (use_pin && i % chunk == 0) {
      if (i > 0) arr.unpin(i - chunk);
      arr.pin(i, PinMode::kRead);
    }
    volatile uint64_t v = arr.get(i);
    (void)v;
    if (use_pin && i + 1 == total) arr.unpin(i - i % chunk);
  });
}

double gam_seq_ns(uint32_t nodes) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = gam::GamArray<uint64_t>::create(cluster, total);
  return measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
    volatile uint64_t v = arr.get(i);
    (void)v;
  });
}

double bcl_seq_ns(uint32_t nodes) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = bcl::BclArray<uint64_t>::create(cluster, total);
  return measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
    volatile uint64_t v = arr.get(i);
    (void)v;
  });
}

// --json: record the distributed rows (the only ones the message path can
// move) for both coalesce configs, off first as the pre-engine baseline.
int json_main() {
  JsonReport report("fig01_seq_latency", true);
  const uint32_t dist_nodes = max_nodes();
  for (const bool coalesce : {false, true}) {
    setenv("DARRAY_BENCH_COALESCE", coalesce ? "1" : "0", 1);
    const std::string cfg = coalesce ? "coalesce_on" : "coalesce_off";
    report.measure(cfg, "darray_dist_seq", "ns/op",
                   [&] { return darray_seq_ns(dist_nodes, false); });
    report.measure(cfg, "darray_pin_dist_seq", "ns/op",
                   [&] { return darray_seq_ns(dist_nodes, true); });
    report.measure(cfg, "gam_dist_seq", "ns/op", [&] { return gam_seq_ns(dist_nodes); });
  }
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--json")) return json_main();
  const uint32_t dist_nodes = max_nodes();
  std::printf("=== Figure 1: avg latency of 8-byte sequential access (ns/op) ===\n");
  std::printf("array: %llu elems/node; distributed = %u nodes, 1 thread/node\n",
              static_cast<unsigned long long>(elems_per_node()), dist_nodes);

  struct Row {
    const char* name;
    double single, dist;
  };
  Row rows[] = {
      {"BCL", bcl_seq_ns(1), bcl_seq_ns(dist_nodes)},
      {"GAM", gam_seq_ns(1), gam_seq_ns(dist_nodes)},
      {"DArray", darray_seq_ns(1, false), darray_seq_ns(dist_nodes, false)},
      {"DArray-Pin", darray_seq_ns(1, true), darray_seq_ns(dist_nodes, true)},
  };

  std::printf("\n%-12s%16s%16s\n", "system", "single-node", "distributed");
  for (const Row& r : rows) std::printf("%-12s%16.1f%16.1f\n", r.name, r.single, r.dist);

  std::printf("\nexpected shape: dist BCL >> dist GAM > dist DArray > dist DArray-Pin;\n"
              "single-node GAM pays its per-access lock vs DArray/BCL.\n");
  return 0;
}
