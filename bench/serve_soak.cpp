// Serve-path soak: open-loop arrival curves through the client front door,
// measuring tail latency and goodput under overload with admission control on
// vs off, and the hot-key cache's effect on a zipfian-0.99 read mix.
//
//   build/bench/serve_soak [--json] [--metrics-dump] [--profile]
//
// Phases (each on a fresh cluster + service):
//   calibrate      closed-loop capacity estimate (not reported)
//   admission_on   open-loop at ~2x capacity with a mid-run burst, bounded
//                  accept queue: excess arrivals shed with kBusy, tail of the
//                  *served* requests stays bounded
//   admission_off  same arrival schedule, unbounded queue: nothing sheds, the
//                  queue grows for the whole run, and p99 blows up
//   hot_on/hot_off 95% gets, zipfian 0.99 at moderate load: the owner-side
//                  hot-key cache answers the zipfian head without touching
//                  the storage engine
//   stages         request-journey breakdown (obs v4) under a 500 µs injected
//                  backend stall: the five stage histograms must partition
//                  end-to-end latency (stage_sum_ratio ~ 1) and the backend
//                  stage must dominate the retained slow journeys
//
// The paper's serving story (§6.5) is closed-loop throughput; this harness
// covers the orthogonal SLO axis: what clients *experience* when offered load
// exceeds capacity. Sojourn time is measured from the scheduled arrival, so
// client-side queueing (window waits) counts — the honest open-loop metric.
//
// --metrics-dump writes the final /metrics exposition (serve counters
// included) to serve_metrics.prom for scripts/validate_prometheus.py.
//
// --profile adds the continuous-profiling overhead phase (obs v5): identical
// closed-loop runs with the sampling profiler disarmed vs armed at 97 Hz.
// profile_on/profile_off ops_per_s is the CI overhead gate (>= 0.97); a
// higher-rate run then writes serve_profile.prof (obs::dump_profile) and
// serve_profile.collapsed (folded stacks) for scripts/validate_collapsed.py.
#include <algorithm>
#include <deque>
#include <fstream>

#include "bench/bench_util.hpp"
#include "kvs/kvs.hpp"
#include "obs/journey.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry_server.hpp"
#include "serve/client.hpp"
#include "serve/ycsb_serve.hpp"

using namespace darray;
using namespace darray::bench;
using namespace darray::kvs;
using namespace darray::serve;

namespace {

struct PhaseResult {
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  double shed_pct = 0;      // shed / offered
  double goodput_kops = 0;  // kOk+kNotFound responses per second
  double hot_hit_pct = 0;   // hot-cache hits / gets
  double get_mean_us = 0;   // sync-get mean (hot phases: robust to hit mass)
  double get_p50_us = 0;    // sync-get median (hot phases: the zipfian head)
  double get_p99_us = 0;    // sync-get tail (hot phases)
};

double pct(std::vector<uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return static_cast<double>(v[std::min(v.size() - 1,
                                        static_cast<size_t>(q * (v.size() - 1) + 0.5))]);
}

struct Fleet {
  rt::Cluster cluster;
  KvsService svc;

  Fleet(uint32_t nodes, const ServeConfig& scfg, const YcsbConfig& ycfg)
      : cluster(bench_cfg(nodes)) {
    KvsConfig kcfg;
    kcfg.n_main_buckets = 1 << 10;
    svc = KvsService::create(cluster, DKvs::create(cluster), scfg);
    ycsb_load_serve(svc, ycfg);
  }
  ~Fleet() { svc.shutdown(); }
};

// Closed-loop capacity estimate on a service configured like the soak phases.
double calibrate_kops(uint32_t nodes, const ServeConfig& scfg, YcsbConfig ycfg) {
  Fleet f(nodes, scfg, ycfg);
  ycfg.ops_per_thread = env_u64("DARRAY_BENCH_CAL_OPS", 3000);
  return run_ycsb_serve(f.svc, ycfg, /*window=*/8).kops;
}

// Open-loop phase: `rate_ops` total arrivals/s split across one session per
// node, with a 3x burst in the middle 20% of the run. Sojourn = completion
// time minus *scheduled* arrival time.
PhaseResult run_open_loop(uint32_t nodes, const ServeConfig& scfg, YcsbConfig ycfg,
                          double rate_ops, uint64_t total_ops) {
  Fleet f(nodes, scfg, ycfg);
  ServeCounters& c = f.svc.counters();

  const uint64_t ops_per_thread = total_ops / nodes;
  const double rate_per_thread = rate_ops / nodes;
  std::vector<std::vector<uint64_t>> lat(nodes);
  std::vector<std::thread> ts;
  SenseBarrier barrier(nodes + 1);
  std::atomic<uint64_t> good{0};

  for (uint32_t n = 0; n < nodes; ++n) {
    ts.emplace_back([&, n] {
      Client cli = Client::connect(f.svc, {.node = n, .window = 256});
      Xoshiro256 rng(1000003 * 97 + n);
      ZipfGenerator zipf(ycfg.n_keys, ycfg.zipf_theta);
      std::deque<std::pair<uint64_t, serve::OpHandle>> q;  // (t_sched, handle)
      auto& my_lat = lat[n];
      my_lat.reserve(ops_per_thread);
      uint64_t my_good = 0;
      auto harvest = [&] {
        auto [t_sched, h] = std::move(q.front());
        q.pop_front();
        const Response r = h.get();
        my_lat.push_back(now_ns() - t_sched);
        if (r.status == Status::kOk || r.status == Status::kNotFound) ++my_good;
      };
      barrier.arrive_and_wait();
      const uint64_t t0 = now_ns();
      // Piecewise arrival schedule: 1x — 3x burst — 1x, same op budget.
      const uint64_t burst_lo = ops_per_thread * 2 / 5;
      const uint64_t burst_hi = ops_per_thread * 3 / 5;
      double t_rel_s = 0;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const double r = (i >= burst_lo && i < burst_hi) ? rate_per_thread * 3
                                                         : rate_per_thread;
        t_rel_s += 1.0 / r;
        const uint64_t t_sched = t0 + static_cast<uint64_t>(t_rel_s * 1e9);
        while (now_ns() < t_sched) {
          if (!q.empty() && q.front().second.ready())
            harvest();  // drain completions instead of spinning idle
          else
            std::this_thread::yield();
        }
        while (q.size() >= 256) harvest();
        const uint64_t k = zipf.next(rng);
        if (rng.next_double() < ycfg.get_ratio)
          q.emplace_back(t_sched, cli.async_get(ycsb_key(k)));
        else
          q.emplace_back(t_sched,
                         cli.async_put(ycsb_key(k), ycsb_value(k ^ i, ycfg.value_bytes)));
      }
      while (!q.empty()) harvest();
      good.fetch_add(my_good);
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  const uint64_t t0 = now_ns();
  barrier.arrive_and_wait();
  const uint64_t t1 = now_ns();
  for (auto& t : ts) t.join();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());

  PhaseResult r;
  r.p50_ms = pct(all, 0.50) / 1e6;
  r.p99_ms = pct(all, 0.99) / 1e6;
  r.p999_ms = pct(all, 0.999) / 1e6;
  const double offered = static_cast<double>(c.accepted.load() + c.shed.load());
  r.shed_pct = offered > 0 ? 100.0 * static_cast<double>(c.shed.load()) / offered : 0;
  r.goodput_kops =
      static_cast<double>(good.load()) / (static_cast<double>(t1 - t0) / 1e9) / 1e3;
  return r;
}

// Hot-key phase: closed-loop sync gets (so each get is individually timed)
// over a zipfian 0.99 mix with occasional puts for invalidation traffic.
PhaseResult run_hot(uint32_t nodes, const ServeConfig& scfg, YcsbConfig ycfg,
                    uint64_t ops_per_thread) {
  Fleet f(nodes, scfg, ycfg);
  ServeCounters& c = f.svc.counters();

  std::vector<std::vector<uint64_t>> lat(nodes);
  std::vector<std::thread> ts;
  for (uint32_t n = 0; n < nodes; ++n) {
    ts.emplace_back([&, n] {
      Client cli = Client::connect(f.svc, {.node = n});
      Xoshiro256 rng(7 * 1000003 + n);
      ZipfGenerator zipf(ycfg.n_keys, ycfg.zipf_theta);
      auto& my_lat = lat[n];
      my_lat.reserve(ops_per_thread);
      std::string v;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const uint64_t k = zipf.next(rng);
        if (rng.next_double() < ycfg.get_ratio) {
          const uint64_t s = now_ns();
          cli.get(ycsb_key(k), v);
          my_lat.push_back(now_ns() - s);
        } else {
          cli.put(ycsb_key(k), ycsb_value(k ^ i, ycfg.value_bytes));
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());

  PhaseResult r;
  uint64_t sum = 0;
  for (const uint64_t ns : all) sum += ns;
  r.get_mean_us =
      all.empty() ? 0 : static_cast<double>(sum) / static_cast<double>(all.size()) / 1e3;
  r.get_p50_us = pct(all, 0.50) / 1e3;
  r.get_p99_us = pct(all, 0.99) / 1e3;
  const uint64_t gets = static_cast<uint64_t>(all.size());
  r.hot_hit_pct = gets ? 100.0 * static_cast<double>(c.hot_hits.load()) /
                             static_cast<double>(gets)
                       : 0;
  return r;
}

// Journey-breakdown phase: closed-loop sync ops against workers with a fixed
// artificial backend stall, reading the per-stage histograms the serve path
// filled. The load phase's journeys are dropped first so the numbers cover
// only the timed mix.
struct StageResult {
  double p50_us[obs::kNumJourneyStages] = {0};
  double p99_us[obs::kNumJourneyStages] = {0};
  double e2e_p50_us = 0, e2e_p99_us = 0;
  double stage_sum_ratio = 0;   // sum of per-stage sums / end-to-end sum
  double backend_dom_pct = 0;   // % of retained slow journeys backend-dominated
  double retained = 0;
};

StageResult run_stages(uint32_t nodes, const ServeConfig& scfg, YcsbConfig ycfg,
                       uint64_t ops_per_thread) {
  Fleet f(nodes, scfg, ycfg);
  auto& jc = obs::journey_collector();
  jc.reset();

  std::vector<std::thread> ts;
  for (uint32_t n = 0; n < nodes; ++n) {
    ts.emplace_back([&, n] {
      Client cli = Client::connect(f.svc, {.node = n});
      Xoshiro256 rng(13 * 1000003 + n);
      ZipfGenerator zipf(ycfg.n_keys, ycfg.zipf_theta);
      std::string v;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        const uint64_t k = zipf.next(rng);
        if (rng.next_double() < ycfg.get_ratio)
          cli.get(ycsb_key(k), v);
        else
          cli.put(ycsb_key(k), ycsb_value(k ^ i, ycfg.value_bytes));
      }
    });
  }
  for (auto& t : ts) t.join();

  StageResult r;
  uint64_t stage_sum = 0;
  for (size_t s = 0; s < obs::kNumJourneyStages; ++s) {
    const obs::HistogramSnapshot snap =
        jc.stage_snapshot(static_cast<obs::JourneyStage>(s));
    r.p50_us[s] = static_cast<double>(snap.percentile_ns(0.50)) / 1e3;
    r.p99_us[s] = static_cast<double>(snap.percentile_ns(0.99)) / 1e3;
    stage_sum += snap.sum_ns;
  }
  const obs::HistogramSnapshot e2e = jc.e2e_snapshot();
  r.e2e_p50_us = static_cast<double>(e2e.percentile_ns(0.50)) / 1e3;
  r.e2e_p99_us = static_cast<double>(e2e.percentile_ns(0.99)) / 1e3;
  r.stage_sum_ratio =
      e2e.sum_ns ? static_cast<double>(stage_sum) / static_cast<double>(e2e.sum_ns) : 0;

  uint64_t slow = 0, backend_dom = 0;
  for (const obs::RequestJourney& j : jc.snapshot_retained()) {
    if (j.flags != 0 || j.total_ns() == 0) continue;  // sheds/timeouts: no chain
    ++slow;
    if (j.dominant_stage() == obs::JourneyStage::kBackend) ++backend_dom;
  }
  r.backend_dom_pct =
      slow ? 100.0 * static_cast<double>(backend_dom) / static_cast<double>(slow) : 0;
  r.retained = static_cast<double>(jc.retained());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::register_current_thread("main");
  const bool json = has_flag(argc, argv, "--json");
  const bool dump = has_flag(argc, argv, "--metrics-dump");
  const bool profile = has_flag(argc, argv, "--profile");
  const uint32_t nodes = std::min<uint32_t>(3, max_nodes());
  JsonReport report("serve_soak", json);

  YcsbConfig ycfg;
  ycfg.n_keys = env_u64("DARRAY_BENCH_KEYS", 2000);
  ycfg.get_ratio = 0.9;
  ycfg.value_bytes = 64;
  ycfg.threads_per_node = 1;

  // A fixed artificial service time makes capacity (and therefore "2x
  // overload") reproducible across hosts.
  ServeConfig base;
  base.workers_per_node = 2;
  base.worker_delay_ns = env_u64("DARRAY_SERVE_DELAY_NS", 400'000);
  base.hot_key_enabled = false;  // isolate admission; hot phases re-enable

  const double cap_kops = calibrate_kops(nodes, base, ycfg);
  const double rate = cap_kops * 1e3 * 2.0;  // 2x overload
  const uint64_t total_ops = env_u64("DARRAY_BENCH_SOAK_OPS", 9000);
  std::printf("calibrated capacity: %.1f Kops/s -> open-loop rate %.0f ops/s\n",
              cap_kops, rate);

  const uint32_t reps = json ? bench_reps() : 1;
  std::vector<double> on_p50, on_p99, on_p999, on_shed, on_good;
  std::vector<double> off_p50, off_p99, off_p999, off_shed, off_good;
  print_header("open loop @ 2x capacity (+3x burst), " + std::to_string(nodes) + " nodes",
               {"phase", "p50_ms", "p99_ms", "p999_ms", "shed%", "goodKops"});
  for (uint32_t rep = 0; rep < reps; ++rep) {
    ServeConfig on = base;
    on.accept_queue_cap = static_cast<uint32_t>(env_u64("DARRAY_SERVE_CAP", 64));
    PhaseResult a = run_open_loop(nodes, on, ycfg, rate, total_ops);
    on_p50.push_back(a.p50_ms);
    on_p99.push_back(a.p99_ms);
    on_p999.push_back(a.p999_ms);
    on_shed.push_back(a.shed_pct);
    on_good.push_back(a.goodput_kops);
    print_row(1, {a.p50_ms, a.p99_ms, a.p999_ms, a.shed_pct, a.goodput_kops}, "%14.2f");

    ServeConfig off = base;
    off.accept_queue_cap = 0;  // unbounded: the no-admission baseline
    PhaseResult b = run_open_loop(nodes, off, ycfg, rate, total_ops);
    off_p50.push_back(b.p50_ms);
    off_p99.push_back(b.p99_ms);
    off_p999.push_back(b.p999_ms);
    off_shed.push_back(b.shed_pct);
    off_good.push_back(b.goodput_kops);
    print_row(0, {b.p50_ms, b.p99_ms, b.p999_ms, b.shed_pct, b.goodput_kops}, "%14.2f");
  }
  report.add("admission_on", "p50_ms", "ms", on_p50);
  report.add("admission_on", "p99_ms", "ms", on_p99);
  report.add("admission_on", "p999_ms", "ms", on_p999);
  report.add("admission_on", "shed_pct", "pct", on_shed);
  report.add("admission_on", "goodput_kops", "Kops/s", on_good);
  report.add("admission_off", "p50_ms", "ms", off_p50);
  report.add("admission_off", "p99_ms", "ms", off_p99);
  report.add("admission_off", "p999_ms", "ms", off_p999);
  report.add("admission_off", "shed_pct", "pct", off_shed);
  report.add("admission_off", "goodput_kops", "Kops/s", off_good);

  // Hot-key phases: same moderate closed-loop load, cache on vs off.
  YcsbConfig hcfg = ycfg;
  hcfg.get_ratio = 0.95;
  const uint64_t hot_ops = env_u64("DARRAY_BENCH_HOT_OPS", 4000);
  // Hot phases model a slower storage probe (hits skip it entirely — that is
  // the cache's value proposition) and a wider hot set so the zipfian head
  // fits. The storage engine itself is untouched; the delay stands in for
  // slab-probe + bucket-walk cost under contention.
  ServeConfig hot_base = base;
  hot_base.worker_delay_ns = env_u64("DARRAY_SERVE_HOT_DELAY_NS", 400'000);
  hot_base.hot_max_entries = 64;
  std::vector<double> hot_on_mean, hot_on_p50, hot_on_p99, hot_hits;
  std::vector<double> hot_off_mean, hot_off_p50, hot_off_p99;
  print_header("hot-key cache, zipfian 0.99, 95% gets",
               {"hot", "get_mean_us", "get_p50_us", "get_p99_us", "hit%"});
  for (uint32_t rep = 0; rep < reps; ++rep) {
    ServeConfig hot = hot_base;
    hot.hot_key_enabled = true;
    hot.hot_promote_threshold = 8;
    PhaseResult h1 = run_hot(nodes, hot, hcfg, hot_ops);
    hot_on_mean.push_back(h1.get_mean_us);
    hot_on_p50.push_back(h1.get_p50_us);
    hot_on_p99.push_back(h1.get_p99_us);
    hot_hits.push_back(h1.hot_hit_pct);
    print_row(1, {h1.get_mean_us, h1.get_p50_us, h1.get_p99_us, h1.hot_hit_pct},
              "%14.2f");

    ServeConfig cold = hot_base;  // hot_key_enabled already false
    PhaseResult h0 = run_hot(nodes, cold, hcfg, hot_ops);
    hot_off_mean.push_back(h0.get_mean_us);
    hot_off_p50.push_back(h0.get_p50_us);
    hot_off_p99.push_back(h0.get_p99_us);
    print_row(0, {h0.get_mean_us, h0.get_p50_us, h0.get_p99_us, 0.0}, "%14.2f");
  }
  report.add("hot_on", "get_mean_us", "us", hot_on_mean);
  report.add("hot_on", "get_p50_us", "us", hot_on_p50);
  report.add("hot_on", "get_p99_us", "us", hot_on_p99);
  report.add("hot_on", "hot_hit_pct", "pct", hot_hits);
  report.add("hot_off", "get_mean_us", "us", hot_off_mean);
  report.add("hot_off", "get_p50_us", "us", hot_off_p50);
  report.add("hot_off", "get_p99_us", "us", hot_off_p99);

  // Stage-breakdown phase: a 500 µs backend stall must show up as the backend
  // stage, the stages must account for (nearly) all of end-to-end time, and
  // the tail sampler must retain slow journeys blaming the backend.
  ServeConfig stage_cfg = base;
  stage_cfg.worker_delay_ns = env_u64("DARRAY_SERVE_STAGE_DELAY_NS", 500'000);
  const uint64_t stage_ops = env_u64("DARRAY_BENCH_STAGE_OPS", 1500);
  std::vector<double> st_ratio, st_dom, st_retained, st_e2e_p50, st_e2e_p99;
  std::vector<std::vector<double>> st_p50(obs::kNumJourneyStages),
      st_p99(obs::kNumJourneyStages);
  print_header("request-journey stages, 500us backend stall",
               {"phase", "backend_p50us", "backend_p99us", "sum_ratio", "backend_dom%",
                "retained"});
  for (uint32_t rep = 0; rep < reps; ++rep) {
    StageResult s = run_stages(nodes, stage_cfg, ycfg, stage_ops);
    st_ratio.push_back(s.stage_sum_ratio);
    st_dom.push_back(s.backend_dom_pct);
    st_retained.push_back(s.retained);
    st_e2e_p50.push_back(s.e2e_p50_us);
    st_e2e_p99.push_back(s.e2e_p99_us);
    for (size_t i = 0; i < obs::kNumJourneyStages; ++i) {
      st_p50[i].push_back(s.p50_us[i]);
      st_p99[i].push_back(s.p99_us[i]);
    }
    const size_t bk = static_cast<size_t>(obs::JourneyStage::kBackend);
    print_row(1, {s.p50_us[bk], s.p99_us[bk], s.stage_sum_ratio, s.backend_dom_pct,
                  s.retained},
              "%14.2f");
    if (dump && rep == 0) {
      if (obs::journey_collector().dump_json("serve_slow.json"))
        std::printf("journey dump: wrote serve_slow.json\n");
    }
  }
  for (size_t i = 0; i < obs::kNumJourneyStages; ++i) {
    const std::string st = obs::journey_stage_name(static_cast<obs::JourneyStage>(i));
    report.add("stages", st + "_p50_us", "us", st_p50[i]);
    report.add("stages", st + "_p99_us", "us", st_p99[i]);
  }
  report.add("stages", "e2e_p50_us", "us", st_e2e_p50);
  report.add("stages", "e2e_p99_us", "us", st_e2e_p99);
  report.add("stages", "stage_sum_ratio", "ratio", st_ratio);
  report.add("stages", "backend_dom_pct", "pct", st_dom);
  report.add("stages", "retained", "count", st_retained);

  // Profiling-overhead phase: the same closed-loop pipelined workload with
  // the sampling profiler disarmed vs armed at the always-on default (97 Hz
  // cpu mode). The gated metric is throughput retention, not latency — a
  // profiler that costs cycles shows up directly as lost ops/s.
  if (profile) {
    YcsbConfig pcfg = ycfg;
    pcfg.ops_per_thread = env_u64("DARRAY_BENCH_PROF_OPS", 4000);
    ServeConfig psrv = base;
    psrv.worker_delay_ns = 0;  // real CPU work only: overhead has nowhere to hide
    std::vector<double> prof_off_ops, prof_on_ops;
    print_header("profiler overhead, closed loop, " + std::to_string(nodes) + " nodes",
                 {"profiler", "ops_per_s"});
    for (uint32_t rep = 0; rep < reps; ++rep) {
      {
        Fleet f(nodes, psrv, pcfg);
        const double ops = run_ycsb_serve(f.svc, pcfg, /*window=*/8).kops * 1e3;
        prof_off_ops.push_back(ops);
        print_row(0, {ops}, "%14.0f");
      }
      {
        Fleet f(nodes, psrv, pcfg);
        obs::ProfilerOptions po;  // the always-on defaults (config defaults)
        if (!obs::profiler_start(po))
          std::fprintf(stderr, "serve_soak: profiler_start failed\n");
        const double ops = run_ycsb_serve(f.svc, pcfg, /*window=*/8).kops * 1e3;
        obs::profiler_stop();
        prof_on_ops.push_back(ops);
        print_row(1, {ops}, "%14.0f");
      }
    }
    report.add("profile_off", "ops_per_s", "ops/s", prof_off_ops);
    report.add("profile_on", "ops_per_s", "ops/s", prof_on_ops);

    // Artifact run at a higher rate so the dump has a meaningful sample
    // population: scripts/validate_collapsed.py asserts the folded output
    // parses and that the tx drain and dispatcher workers show up by name.
    {
      Fleet f(nodes, psrv, pcfg);
      obs::ProfilerOptions po;
      po.hz = static_cast<uint32_t>(env_u64("DARRAY_PROF_ARTIFACT_HZ", 499));
      if (obs::profiler_start(po)) {
        run_ycsb_serve(f.svc, pcfg, /*window=*/8);
        obs::profiler_stop();
        if (obs::dump_profile("serve_profile.prof"))
          std::printf("profile dump: wrote serve_profile.prof\n");
        std::ofstream out("serve_profile.collapsed");
        out << obs::profiler_collapsed();
        std::printf("profile dump: wrote serve_profile.collapsed\n");
        const obs::ProfileTotals pt = obs::profile_totals();
        std::printf("profile totals: samples %llu dropped %llu signals %llu "
                    "unattributed %llu rings %llu\n",
                    static_cast<unsigned long long>(pt.samples),
                    static_cast<unsigned long long>(pt.dropped),
                    static_cast<unsigned long long>(pt.signals),
                    static_cast<unsigned long long>(pt.unattributed),
                    static_cast<unsigned long long>(pt.rings));
      }
    }
  }

  {
    // A fresh fleet whose registry still has live serve counters: embed the
    // snapshot in the report and (with --metrics-dump) render the exposition
    // exactly as /metrics would serve it.
    Fleet f(nodes, base, ycfg);
    Client cli = Client::connect(f.svc, {.node = 0});
    std::string v;
    cli.get(ycsb_key(1), v);
    report.set_stats(f.cluster.stats());
    if (dump) {
      std::ofstream out("serve_metrics.prom");
      out << obs::render_prometheus(f.cluster.stats());
      std::printf("metrics dump: wrote serve_metrics.prom\n");
    }
  }

  if (!report.write()) return 1;
  std::printf("\nexpected shape: with admission on, p99 of served requests stays "
              "bounded and overload turns into explicit kBusy sheds; with it off, "
              "the queue (and every latency percentile) grows with the run. The "
              "hot-key cache lifts the zipfian head out of the storage engine.\n");
  return 0;
}
