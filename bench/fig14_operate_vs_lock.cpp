// Figure 14: (a) throughput and (b) average latency of Zipfian(0.99)
// write_add on a global array, comparing the Operate interface against the
// same semantics built from WLock + Read + Write.
//
// Paper shape: Operate throughput scales with nodes at flat latency; the
// lock-based variant collapses as nodes are added (exclusive ownership of hot
// elements serialises the cluster) and its latency grows steeply.
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

void add_fn(uint64_t& a, uint64_t b) { a += b; }

struct Point {
  double mops;
  double avg_us;
};

Point run(uint32_t nodes, bool use_operate) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = DArray<uint64_t>::create(cluster, total);
  const auto add = arr.register_op(&add_fn, 0);
  // The lock path is slow by design (that is the figure's point); keep its
  // default op count small enough to finish on an oversubscribed host.
  const uint64_t ops = use_operate ? env_u64("DARRAY_BENCH_OP_OPS", 20000)
                                   : env_u64("DARRAY_BENCH_LOCK_OPS", 150);

  // Pre-draw per-node index streams so generation isn't measured.
  std::vector<std::vector<uint64_t>> idx(nodes);
  {
    ZipfGenerator zipf(total, 0.99);
    for (uint32_t n = 0; n < nodes; ++n) {
      Xoshiro256 rng(1000 + n);
      idx[n].reserve(ops);
      for (uint64_t i = 0; i < ops; ++i) idx[n].push_back(zipf.next(rng));
    }
  }

  const double mops =
      measure_mops(cluster, 1, ops, [&](rt::NodeId n, uint32_t, uint64_t i) {
        const uint64_t k = idx[n][i];
        if (use_operate) {
          arr.apply(k, add, 1);
        } else {
          auto g = arr.scoped_wlock(k);
          arr.set(k, arr.get(k) + 1);
        }
      });
  return {mops, static_cast<double>(nodes) / mops};  // per-thread avg latency in µs
}

}  // namespace

int main() {
  std::vector<uint64_t> node_counts;
  for (uint64_t n = 1; n <= max_nodes(); ++n) node_counts.push_back(n);

  std::printf("=== Figure 14: zipfian(0.99) write_add — Operate vs WLock+Read+Write ===\n");
  print_header("(a) throughput (Mops/s)  (b) avg latency (us)",
               {"nodes", "Operate", "Lock", "Op-lat", "Lock-lat"});
  std::vector<double> op_tp, lk_tp;
  for (uint64_t n : node_counts) {
    const Point op = run(static_cast<uint32_t>(n), true);
    const Point lk = run(static_cast<uint32_t>(n), false);
    op_tp.push_back(op.mops);
    lk_tp.push_back(lk.mops);
    print_row(n, {op.mops, lk.mops, op.avg_us, lk.avg_us}, "%14.3f");
  }
  std::printf("\nexpected shape: Operate throughput grows with nodes at stable latency; "
              "Lock throughput decays and its latency climbs (exclusive ownership of the "
              "zipfian head).\n");
  return 0;
}
