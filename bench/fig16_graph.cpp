// Figure 16: running time of PageRank and Connected Components on an R-MAT
// graph, for DArray, DArray-Pin, GAM, and Gemini.
//
// Paper setup: rMat24 (2^24 vertices, 2^26 edges), all cores per node. The
// simulation defaults to DARRAY_BENCH_SCALE=10 so the whole suite runs on one
// core; set DARRAY_BENCH_SCALE=24 to reproduce the paper-sized run.
//
// Paper shape: GAM is 2–3 orders of magnitude slower than DArray (per-edge
// exclusive atomics vs combined Operate); Gemini wins on one node but
// DArray-Pin overtakes it as nodes grow.
#include "bench/bench_util.hpp"
#include "graph/cc.hpp"
#include "graph/pagerank.hpp"
#include "graph/rmat.hpp"

using namespace darray;
using namespace darray::bench;
using namespace darray::graph;

namespace {

template <typename Fn>
double time_s(Fn&& fn) {
  const uint64_t t0 = now_ns();
  fn();
  return static_cast<double>(now_ns() - t0) / 1e9;
}

}  // namespace

int main() {
  const uint32_t nodes = std::min<uint32_t>(3, max_nodes());
  const uint32_t scale = graph_scale();
  const bool run_gam = env_u64("DARRAY_BENCH_SKIP_GAM", 0) == 0;

  RmatParams params;
  params.scale = scale;
  params.edge_factor = 4;
  const auto edges = rmat_edges(params);
  Csr g = Csr::from_edges(uint64_t{1} << scale, edges);
  Csr g_sym = Csr::symmetric_from_edges(uint64_t{1} << scale, edges);

  GraphRunOptions opt;
  opt.iterations = 5;
  opt.threads_per_node = std::min<uint32_t>(2, max_threads());

  std::printf("=== Figure 16: graph application running time (s) — rMat%u, %u nodes, "
              "%u threads/node ===\n",
              scale, nodes, opt.threads_per_node);
  std::printf("graph: %llu vertices, %llu edges; PageRank = %d iterations\n",
              static_cast<unsigned long long>(g.n_vertices()),
              static_cast<unsigned long long>(g.n_edges()), opt.iterations);

  auto run_engine = [&](const char* name, double pr, double cc) {
    std::printf("%-12s%14.3f%14.3f\n", name, pr, cc);
  };

  std::printf("\n%-12s%14s%14s\n", "engine", "PageRank", "CC");
  {
    rt::Cluster cluster(bench_cfg(nodes));
    GraphRunOptions o = opt;
    const double pr = time_s([&] { pagerank_darray(cluster, g, o); });
    const double cc = time_s([&] { cc_darray(cluster, g_sym, o); });
    run_engine("DArray", pr, cc);
  }
  {
    rt::Cluster cluster(bench_cfg(nodes));
    GraphRunOptions o = opt;
    o.use_pin = true;
    const double pr = time_s([&] { pagerank_darray(cluster, g, o); });
    const double cc = time_s([&] { cc_darray(cluster, g_sym, o); });
    run_engine("DArray-Pin", pr, cc);
  }
  {
    rt::Cluster cluster(bench_cfg(nodes));
    const double pr = time_s([&] { pagerank_gemini(cluster, g, opt); });
    const double cc = time_s([&] { cc_gemini(cluster, g_sym, opt); });
    run_engine("Gemini", pr, cc);
  }
  if (run_gam) {
    rt::Cluster cluster(bench_cfg(nodes));
    const double pr = time_s([&] { pagerank_gam(cluster, g, opt); });
    const double cc = time_s([&] { cc_gam(cluster, g_sym, opt); });
    run_engine("GAM", pr, cc);
  } else {
    std::printf("%-12s%14s%14s  (DARRAY_BENCH_SKIP_GAM=1)\n", "GAM", "skipped", "skipped");
  }

  std::printf("\nexpected shape: GAM slower than DArray by orders of magnitude; "
              "DArray-Pin ahead of plain DArray; Gemini competitive (it wins at 1 node, "
              "DArray-Pin overtakes as nodes grow).\n");
  return 0;
}
