// Google-benchmark microbenchmarks of the data access fast path (§4.1): the
// per-op cost of DArray get/set/apply against a native array, the pinned
// variant, and the GAM-style locked path — the "minimal overhead" claim
// behind Fig. 1's single-machine bars (one atomic read + two atomic writes +
// branches, and zero atomics under a pin).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "baselines/gam/gam_array.hpp"
#include "bench/bench_util.hpp"
#include "common/wait.hpp"
#include "core/darray.hpp"
#include "net/comm_layer.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

using namespace darray;

namespace {

// One shared single-node cluster for all fast-path benches (setup is heavy).
struct Fixture {
  rt::Cluster cluster;
  DArray<uint64_t> arr;
  gam::GamArray<uint64_t> gam_arr;
  OpHandle<uint64_t> add;

  static rt::ClusterConfig cfg() {
    rt::ClusterConfig c;
    c.num_nodes = 1;
    // The live sampler runs during every measurement here on purpose: the
    // fast-path numbers are taken with telemetry on, so its cost (one
    // snapshot per 100 ms on a background thread) is bounded by the
    // telemetry-off baseline staying within the noise band. Set
    // DARRAY_TELEMETRY=0 for the off-baseline when measuring that bound.
    c.telemetry_enabled = bench::env_u64("DARRAY_TELEMETRY", 1) != 0;
    c.telemetry_sample_ns = bench::env_u64("DARRAY_TELEMETRY_SAMPLE_NS", 100'000'000);
    return c;
  }

  Fixture() : cluster(cfg()) {
    arr = DArray<uint64_t>::create(cluster, 1 << 16);
    gam_arr = gam::GamArray<uint64_t>::create(cluster, 1 << 16);
    add = arr.register_op(+[](uint64_t& a, uint64_t v) { a += v; }, 0);
    bind_thread(cluster, 0);
  }

  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

constexpr uint64_t kMask = (1 << 16) - 1;

void BM_NativeArrayRead(benchmark::State& state) {
  std::vector<uint64_t> v(1 << 16, 1);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += v[i++ & kMask];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NativeArrayRead);

void BM_DArrayGet(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.arr.get(i++ & kMask);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DArrayGet);

void BM_DArrayGetPinned(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  f.arr.pin(0, PinMode::kRead);
  const uint64_t chunk_mask = f.arr.meta().chunk_elems - 1;
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.arr.get(i++ & chunk_mask);  // stays inside the pinned chunk
    benchmark::DoNotOptimize(sum);
  }
  f.arr.unpin(0);
}
BENCHMARK(BM_DArrayGetPinned);

void BM_GamGetLocked(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.gam_arr.get(i++ & kMask);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GamGetLocked);

void BM_DArraySet(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.set(i & kMask, i);
    ++i;
  }
}
BENCHMARK(BM_DArraySet);

void BM_DArrayApplyLocal(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.apply(i & kMask, f.add, 1);
    ++i;
  }
}
BENCHMARK(BM_DArrayApplyLocal);

void BM_GamAtomicRmwLocal(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state)
    f.gam_arr.atomic_rmw(i++ & kMask, +[](uint64_t a, uint64_t v) { return a + v; }, 1);
}
BENCHMARK(BM_GamAtomicRmwLocal);

void BM_DArrayWlockUnlock(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.wlock(i & kMask);
    f.arr.unlock(i & kMask);
    ++i;
  }
}
BENCHMARK(BM_DArrayWlockUnlock);

// --- --json mode: small-message engine throughput ----------------------------
// Raw two-node comm-layer pair (no runtime on top), so the numbers isolate
// the per-message Tx/Rx software cost the coalescing engine attacks. The
// coalesce-off config reproduces the pre-coalescing engine's wire behaviour
// and serves as the recorded baseline.

// One fabric + two comm layers; dispatch at node 1 counts (flood) or echoes
// back (pingpong), dispatch at node 0 counts replies.
struct CommPairBench {
  rt::ClusterConfig cfg;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::atomic<int> rx0{0}, rx1{0};
  bool echo = false;
  std::unique_ptr<net::CommLayer> c0, c1;

  explicit CommPairBench(bool coalesce, bool echo_mode) : echo(echo_mode) {
    cfg.num_nodes = 2;
    cfg.coalesce_enabled = coalesce;
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<net::CommLayer>(0, 2, cfg, d0, [this](net::RpcMessage&&) {
      rx0.fetch_add(1, std::memory_order_release);
      rx0.notify_all();
    });
    c1 = std::make_unique<net::CommLayer>(1, 2, cfg, d1, [this](net::RpcMessage&& m) {
      if (echo) {
        net::TxRequest r;
        r.dst = 0;
        r.hdr.type = net::MsgType::kInvAck;
        r.hdr.chunk = m.hdr.chunk;
        c1->post(std::move(r));
      }
      rx1.fetch_add(1, std::memory_order_release);
      rx1.notify_all();
    });
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~CommPairBench() {
    c0->stop();
    c1->stop();
  }
};

// One-way small-message throughput: node 0 floods header-only protocol
// messages, clock stops when node 1 has dispatched them all.
double flood_mops(bool coalesce, int msgs) {
  CommPairBench p(coalesce, /*echo_mode=*/false);
  const uint64_t t0 = now_ns();
  for (int i = 0; i < msgs; ++i) {
    net::TxRequest t;
    t.dst = 1;
    t.hdr.type = net::MsgType::kInvAck;
    t.hdr.chunk = static_cast<uint64_t>(i);
    p.c0->post(std::move(t));
  }
  spin_wait_until(p.rx1, [msgs](int v) { return v >= msgs; });
  const uint64_t t1 = now_ns();
  return static_cast<double>(msgs) / (static_cast<double>(t1 - t0) / 1e9) / 1e6;
}

// Serial round trips: no packing opportunity, so this isolates the fixed
// per-message path cost (doorbell wakeups, buffer staging, dispatch).
double pingpong_rtt_ns(bool coalesce, int rtts) {
  CommPairBench p(coalesce, /*echo_mode=*/true);
  const uint64_t t0 = now_ns();
  for (int i = 0; i < rtts; ++i) {
    net::TxRequest t;
    t.dst = 1;
    t.hdr.type = net::MsgType::kInvAck;
    t.hdr.chunk = static_cast<uint64_t>(i);
    p.c0->post(std::move(t));
    spin_wait_until(p.rx0, [i](int v) { return v >= i + 1; });
  }
  const uint64_t t1 = now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(rtts);
}

// --- large-message engine sweep (--sweep / --json) ---------------------------
// Bulk transfer bandwidth vs size across the eager/rendezvous split
// (docs/perf.md, "Large-message engine"). Two configs over the same raw
// comm-layer pair:
//   eager  the pre-engine large-message behaviour: the payload is fragmented
//          into <= 8 KiB staged SEND frames (copied through the Tx arena and
//          the Rx payload pool), one dispatch per frame;
//   rndz   one TxRequest carrying the registered source (data_src): the
//          engine picks zero-copy eager WRITE below the threshold and the
//          negotiated one-sided READ pull at or above it.
// The crossover recorded in BENCH_micro_fastpath.json sets the default
// rendezvous_threshold_bytes; CI gates rndz >= 2x eager at 1 MiB.

constexpr uint32_t kSweepMax = 4 << 20;   // 4 MiB
constexpr uint32_t kSweepFrame = 8192;    // staged-SEND frame payload

struct BulkPairBench {
  rt::ClusterConfig cfg;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::atomic<int> rx1{0};
  std::unique_ptr<net::CommLayer> c0, c1;
  std::vector<std::byte> src, dst;
  rdma::MemoryRegion ms, md;

  explicit BulkPairBench(bool rndz) : src(kSweepMax), dst(kSweepMax) {
    cfg.num_nodes = 2;
    cfg.chunk_elems = kSweepFrame / 8;  // frame payloads fit one send buffer
    cfg.rendezvous_enabled = rndz;
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<net::CommLayer>(0, 2, cfg, d0, [](net::RpcMessage&&) {});
    c1 = std::make_unique<net::CommLayer>(1, 2, cfg, d1, [this](net::RpcMessage&&) {
      rx1.fetch_add(1, std::memory_order_release);
      rx1.notify_all();
    });
    ms = d0->reg_mr(src.data(), src.size());
    md = d1->reg_mr(dst.data(), dst.size());
    for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i * 31);
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~BulkPairBench() {
    c0->stop();
    c1->stop();
  }
};

// Serial bulk transfers of `size` bytes; returns MB/s and records the
// per-transfer completion latency (post to final dispatch) into `hist`.
double bulk_bw_mbps(BulkPairBench& p, uint32_t size, LatencyHistogram& hist) {
  const int iters = static_cast<int>(std::clamp<uint64_t>(
      bench::env_u64("DARRAY_BENCH_SWEEP_BYTES", 8u << 20) / size, 4, 512));
  int expect = p.rx1.load(std::memory_order_acquire);
  const uint64_t t0 = now_ns();
  for (int it = 0; it < iters; ++it) {
    const uint64_t ts = now_ns();
    if (p.cfg.rendezvous_enabled) {
      // One registered-source request: the engine selects the protocol.
      net::TxRequest t;
      t.dst = 1;
      t.hdr.type = net::MsgType::kReadData;
      t.hdr.chunk = static_cast<uint64_t>(it);
      t.data_src = p.src.data();
      t.data_len = size;
      t.data_lkey = p.ms.lkey;
      t.data_remote_addr = reinterpret_cast<uint64_t>(p.dst.data());
      t.data_rkey = p.md.rkey;
      p.c0->post(std::move(t));
      expect += 1;
    } else {
      // Pre-engine framing: stage the bytes through <= 8 KiB payload SENDs.
      for (uint32_t off = 0; off < size; off += kSweepFrame) {
        const uint32_t n = std::min(kSweepFrame, size - off);
        net::TxRequest t;
        t.dst = 1;
        t.hdr.type = net::MsgType::kReadData;
        t.hdr.chunk = static_cast<uint64_t>(it);
        t.payload.assign(p.src.data() + off, n);
        p.c0->post(std::move(t));
        expect += 1;
      }
    }
    spin_wait_until(p.rx1, [expect](int v) { return v >= expect; });
    hist.record(now_ns() - ts);
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(iters) * static_cast<double>(size) / secs / 1e6;
}

std::string size_tag(uint32_t size) {
  if (size >= (1u << 20)) return std::to_string(size >> 20) + "m";
  if (size >= 1024) return std::to_string(size >> 10) + "k";
  return std::to_string(size) + "b";
}

std::vector<uint32_t> sweep_sizes() {
  std::vector<uint32_t> sizes;
  for (uint32_t s = 256; s <= kSweepMax; s *= 4) sizes.push_back(s);
  return sizes;
}

// Runs the sweep into the report (or a printed table when the report is
// disabled) and returns the per-(config, size) median bandwidths.
void run_bulk_sweep(bench::JsonReport& report) {
  if (!report.enabled())
    std::printf("\n%-10s %14s %14s %14s %14s\n", "size", "eager MB/s", "rndz MB/s",
                "eager p99 ns", "rndz p99 ns");
  for (const uint32_t size : sweep_sizes()) {
    double bw[2] = {0, 0}, p99[2] = {0, 0};
    for (const bool rndz : {false, true}) {
      const std::string cfg = rndz ? "rndz" : "eager";
      LatencyHistogram hist;
      bw[rndz] = report.measure(cfg, "bulk_bw_mbps_" + size_tag(size), "MB/s", [&] {
        BulkPairBench p(rndz);
        return bulk_bw_mbps(p, size, hist);
      });
      p99[rndz] = static_cast<double>(hist.percentile_ns(0.99));
      report.add(cfg, "bulk_p99_ns_" + size_tag(size), "ns", {p99[rndz]});
    }
    if (!report.enabled())
      std::printf("%-10s %14.1f %14.1f %14.0f %14.0f\n", size_tag(size).c_str(),
                  bw[0], bw[1], p99[0], p99[1]);
  }
}

int sweep_main() {
  std::printf("=== micro_fastpath (--sweep): bulk bandwidth, eager vs rendezvous ===\n");
  bench::JsonReport report("micro_fastpath", false);
  run_bulk_sweep(report);
  return 0;
}

int json_main() {
  bench::JsonReport report("micro_fastpath", true);
  const int msgs = static_cast<int>(bench::env_u64("DARRAY_BENCH_MSGS", 30000));
  const int rtts = static_cast<int>(bench::env_u64("DARRAY_BENCH_RTTS", 2000));

  // Baseline first (coalesce_off ≡ pre-coalescing engine), then current.
  for (const bool coalesce : {false, true}) {
    const std::string cfg = coalesce ? "coalesce_on" : "coalesce_off";
    report.measure(cfg, "smallmsg_flood", "Mops/s", [&] { return flood_mops(coalesce, msgs); });
    report.measure(cfg, "smallmsg_pingpong", "ns/rtt",
                   [&] { return pingpong_rtt_ns(coalesce, rtts); });
  }

  // Large-message sweep: per-size bulk bandwidth + p99 for the eager
  // (staged-SEND) and rendezvous configs, the crossover behind the default
  // rendezvous_threshold_bytes. CI gates rndz >= 2x eager at 1 MiB.
  run_bulk_sweep(report);

  // Single-node access fast path (the paper's "minimal overhead" claim), for
  // drift tracking alongside the message-path numbers.
  {
    Fixture& f = Fixture::get();
    bind_thread(f.cluster, 0);
    constexpr uint64_t kOps = 1 << 20;
    report.measure("fastpath", "darray_get", "ns/op", [&] {
      const uint64_t t0 = now_ns();
      uint64_t sum = 0;
      for (uint64_t i = 0; i < kOps; ++i) sum += f.arr.get(i & kMask);
      benchmark::DoNotOptimize(sum);
      return static_cast<double>(now_ns() - t0) / static_cast<double>(kOps);
    });
    report.measure("fastpath", "darray_set", "ns/op", [&] {
      const uint64_t t0 = now_ns();
      for (uint64_t i = 0; i < kOps; ++i) f.arr.set(i & kMask, i);
      return static_cast<double>(now_ns() - t0) / static_cast<double>(kOps);
    });
  }

  const net::PayloadPoolStats ps = net::payload_pool_stats();
  std::printf("payload pool: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(ps.hits),
              static_cast<unsigned long long>(ps.misses));

  // A short traced pass so the report's stats block carries hist.* latency
  // percentiles. It runs after (never during) the gated measurements above —
  // tracing stays off while the flood/pingpong/fastpath numbers are taken.
  // The named-baseline delta isolates what this pass alone added.
  {
    Fixture& f = Fixture::get();
    bind_thread(f.cluster, 0);
    f.cluster.mark_stats_baseline("pre_traced_pass");
    obs::set_tracing(true);
    if (obs::tracing_enabled()) {
      constexpr uint64_t kTracedOps = 1 << 14;
      uint64_t sum = 0;
      for (uint64_t i = 0; i < kTracedOps; ++i) {
        f.arr.set(i & kMask, i);
        sum += f.arr.get(i & kMask);
      }
      benchmark::DoNotOptimize(sum);
    }
    obs::set_tracing(false);
    const obs::StatsSnapshot d = f.cluster.stats_delta_since("pre_traced_pass");
    std::printf("traced pass delta: %llu gets (p99 %llu ns), %llu sets (p99 %llu ns)\n",
                static_cast<unsigned long long>(d.value_or("hist.op.get.count")),
                static_cast<unsigned long long>(d.value_or("hist.op.get.p99_ns")),
                static_cast<unsigned long long>(d.value_or("hist.op.set.count")),
                static_cast<unsigned long long>(d.value_or("hist.op.set.p99_ns")));
  }

  // Unified counters from the fixture cluster ride along in the report, so
  // counter drift (extra misses, lost coalescing) diffs with the numbers.
  report.set_stats(Fixture::get().cluster.stats());
  // And the sampler's rings: how the run unfolded over time, not just the
  // end state. Kept to the headline families so the report stays diffable.
  if (const obs::TimeSeriesStore* ts = Fixture::get().cluster.timeseries()) {
    std::vector<obs::TimeSeriesStore::Series> series;
    for (const char* prefix : {"runtime.", "fabric.", "hist.op.", "duty."})
      for (auto& s : ts->collect(prefix))
        series.push_back(std::move(s));
    report.set_series(Fixture::get().cluster.config().telemetry_sample_ns,
                      std::move(series));
  }
  return report.write() ? 0 : 1;
}

// --hist: the single-node access fast path under tracing, as distributions.
// Where the google-benchmark tables above report a mean, this shows the shape
// — a fast-path p50 of tens of ns with a p999 tail from combine flushes and
// allocation slow paths.
int hist_main() {
  std::printf("=== micro_fastpath (--hist): fast-path latency distributions ===\n");
  obs::set_tracing(true);
  if (!obs::tracing_enabled()) {
    std::printf("--hist: tracing is compiled out (DARRAY_TRACING=0); nothing to do\n");
    return 1;
  }
  obs::set_tracing(false);
  obs::reset_latency_histograms();

  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  constexpr uint64_t kOps = 1 << 16;
  obs::set_tracing(true);
  uint64_t sum = 0;
  for (uint64_t i = 0; i < kOps; ++i) {
    f.arr.set(i & kMask, i);
    sum += f.arr.get(i & kMask);
    f.arr.apply(i & kMask, f.add, 1);
  }
  benchmark::DoNotOptimize(sum);
  obs::set_tracing(false);

  std::printf("\nper-op latency (%llu ops each):\n",
              static_cast<unsigned long long>(kOps));
  for (uint8_t k = 0; k < static_cast<uint8_t>(obs::OpKind::kMaxOpKind); ++k) {
    const auto kind = static_cast<obs::OpKind>(k);
    const obs::HistogramSnapshot h = obs::op_latency_snapshot(kind);
    if (h.count == 0) continue;
    std::printf("  %-10s %s\n", obs::op_kind_name(kind), h.summary().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::register_current_thread("main");
  // --profile arms the sampling profiler (always-on defaults, cpu mode) for
  // the whole run — same spirit as the telemetry-on measurement policy above —
  // then writes micro_profile.prof + micro_profile.collapsed on exit.
  const bool profile = bench::has_flag(argc, argv, "--profile");
  if (profile && !obs::profiler_start(obs::ProfilerOptions{}))
    std::fprintf(stderr, "micro_fastpath: profiler_start failed\n");
  int rc = 0;
  if (bench::has_flag(argc, argv, "--json")) {
    rc = json_main();
  } else if (bench::has_flag(argc, argv, "--sweep")) {
    rc = sweep_main();
  } else if (bench::has_flag(argc, argv, "--hist")) {
    rc = hist_main();
  } else {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (profile) {
    obs::profiler_stop();
    if (obs::dump_profile("micro_profile.prof"))
      std::printf("profile dump: wrote micro_profile.prof\n");
    std::ofstream out("micro_profile.collapsed");
    out << obs::profiler_collapsed();
    std::printf("profile dump: wrote micro_profile.collapsed\n");
  }
  return rc;
}
