// Google-benchmark microbenchmarks of the data access fast path (§4.1): the
// per-op cost of DArray get/set/apply against a native array, the pinned
// variant, and the GAM-style locked path — the "minimal overhead" claim
// behind Fig. 1's single-machine bars (one atomic read + two atomic writes +
// branches, and zero atomics under a pin).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/gam/gam_array.hpp"
#include "core/darray.hpp"

using namespace darray;

namespace {

// One shared single-node cluster for all fast-path benches (setup is heavy).
struct Fixture {
  rt::Cluster cluster;
  DArray<uint64_t> arr;
  gam::GamArray<uint64_t> gam_arr;
  uint16_t add;

  static rt::ClusterConfig cfg() {
    rt::ClusterConfig c;
    c.num_nodes = 1;
    return c;
  }

  Fixture() : cluster(cfg()) {
    arr = DArray<uint64_t>::create(cluster, 1 << 16);
    gam_arr = gam::GamArray<uint64_t>::create(cluster, 1 << 16);
    add = arr.register_op(+[](uint64_t& a, uint64_t v) { a += v; }, 0);
    bind_thread(cluster, 0);
  }

  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

constexpr uint64_t kMask = (1 << 16) - 1;

void BM_NativeArrayRead(benchmark::State& state) {
  std::vector<uint64_t> v(1 << 16, 1);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += v[i++ & kMask];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NativeArrayRead);

void BM_DArrayGet(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.arr.get(i++ & kMask);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DArrayGet);

void BM_DArrayGetPinned(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  f.arr.pin(0, PinMode::kRead);
  const uint64_t chunk_mask = f.arr.meta().chunk_elems - 1;
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.arr.get(i++ & chunk_mask);  // stays inside the pinned chunk
    benchmark::DoNotOptimize(sum);
  }
  f.arr.unpin(0);
}
BENCHMARK(BM_DArrayGetPinned);

void BM_GamGetLocked(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0, sum = 0;
  for (auto _ : state) {
    sum += f.gam_arr.get(i++ & kMask);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GamGetLocked);

void BM_DArraySet(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.set(i & kMask, i);
    ++i;
  }
}
BENCHMARK(BM_DArraySet);

void BM_DArrayApplyLocal(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.apply(i & kMask, f.add, 1);
    ++i;
  }
}
BENCHMARK(BM_DArrayApplyLocal);

void BM_GamAtomicRmwLocal(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state)
    f.gam_arr.atomic_rmw(i++ & kMask, +[](uint64_t a, uint64_t v) { return a + v; }, 1);
}
BENCHMARK(BM_GamAtomicRmwLocal);

void BM_DArrayWlockUnlock(benchmark::State& state) {
  Fixture& f = Fixture::get();
  bind_thread(f.cluster, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    f.arr.wlock(i & kMask);
    f.arr.unlock(i & kMask);
    ++i;
  }
}
BENCHMARK(BM_DArrayWlockUnlock);

}  // namespace

BENCHMARK_MAIN();
