// Chaos ablation: the same sequential darray workload with the fault
// injector off and under three seeded fault plans. Reports ns/op plus the
// fabric's fault/recovery counters, so two claims are checkable at a glance:
//   1. injector off  → every fault counter is exactly zero and latency
//      matches the baseline figures (the chaos path costs nothing when cold);
//   2. injector on   → faults are injected and recovered transparently, with
//      latency degrading in proportion to the plan, never diverging.
#include "bench/bench_util.hpp"
#include "chaos/fault_plan.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

chaos::FaultPlan ablation_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.01;
  p.p_rnr = 0.01;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 50'000;
  return p;
}

struct Sample {
  std::string label;
  double ns_per_op;
  rdma::FabricStats stats;
};

Sample run_case(const std::string& label, const chaos::FaultPlan* plan) {
  rt::ClusterConfig cfg = bench_cfg(max_nodes());
  cfg.fault_plan = plan;
  rt::Cluster cluster(cfg);
  const uint64_t total = elems_per_node() * cluster.num_nodes();
  auto arr = DArray<uint64_t>::create(cluster, total);
  const double ns = measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
    arr.set(i, i);
    volatile uint64_t v = arr.get(i);
    (void)v;
  });
  return {label, ns, cluster.fabric().stats()};
}

}  // namespace

int main() {
  std::printf("=== Chaos ablation: seq set+get under seeded fault plans ===\n");
  std::printf("array: %llu elems/node, %u nodes, 1 thread/node\n",
              static_cast<unsigned long long>(elems_per_node()), max_nodes());

  const chaos::FaultPlan p1 = ablation_plan(1), p7 = ablation_plan(7), p42 = ablation_plan(42);
  Sample rows[] = {
      run_case("off", nullptr),
      run_case("seed-1", &p1),
      run_case("seed-7", &p7),
      run_case("seed-42", &p42),
  };

  std::printf("\n%-10s%12s%12s%12s%10s%12s%12s%12s\n", "plan", "ns/op", "wc_errors",
              "rnr_events", "retries", "flushed_wrs", "coalesced", "batchposts");
  for (const Sample& r : rows) {
    std::printf("%-10s%12.1f%12llu%12llu%10llu%12llu%12llu%12llu\n", r.label.c_str(),
                r.ns_per_op,
                static_cast<unsigned long long>(r.stats.wc_errors),
                static_cast<unsigned long long>(r.stats.rnr_events),
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.flushed_wrs),
                static_cast<unsigned long long>(r.stats.coalesced_frames),
                static_cast<unsigned long long>(r.stats.batched_posts));
  }

  std::printf("\nexpected shape: 'off' row all-zero counters at baseline latency;\n"
              "seeded rows show nonzero faults with bounded latency inflation.\n");
  return 0;
}
