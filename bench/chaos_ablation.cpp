// Chaos ablation: the same sequential darray workload with the fault
// injector off and under three seeded fault plans. Reports ns/op plus the
// fabric's fault/recovery counters, so two claims are checkable at a glance:
//   1. injector off  → every fault counter is exactly zero and latency
//      matches the baseline figures (the chaos path costs nothing when cold);
//   2. injector on   → faults are injected and recovered transparently, with
//      latency degrading in proportion to the plan, never diverging.
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.hpp"
#include "chaos/fault_plan.hpp"
#include "core/darray.hpp"
#include "kvs/kvs.hpp"
#include "net/message.hpp"
#include "obs/journey.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

chaos::FaultPlan ablation_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.01;
  p.p_rnr = 0.01;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 50'000;
  return p;
}

struct Sample {
  std::string label;
  double ns_per_op;
  rdma::FabricStats stats;
};

Sample run_case(const std::string& label, const chaos::FaultPlan* plan) {
  rt::ClusterConfig cfg = bench_cfg(max_nodes());
  cfg.fault_plan = plan;
  rt::Cluster cluster(cfg);
  const uint64_t total = elems_per_node() * cluster.num_nodes();
  auto arr = DArray<uint64_t>::create(cluster, total);
  const double ns = measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
    arr.set(i, i);
    volatile uint64_t v = arr.get(i);
    (void)v;
  });
  return {label, ns, cluster.fabric().stats()};
}

// --trace: one seeded run with op tracing on, dumped to JSON, then an
// attribution pass over the merged trace: every injected RNR whose work
// request carried a correlation id is walked back to the kOpBegin event of
// the DArray op that posted it. Exits nonzero if no RNR retry could be
// attributed (the observability chain broke somewhere between layers).
int trace_main() {
  std::printf("=== Chaos ablation (--trace): RNR retry → DArray op attribution ===\n");
  if (!obs::tracing_enabled()) {
    // DARRAY_TRACING=0 build: nothing to attribute, and pretending otherwise
    // would mask a misconfigured CI job.
    obs::set_tracing(true);
    if (!obs::tracing_enabled()) {
      std::printf("tracing is compiled out (DARRAY_TRACING=0); nothing to do\n");
      return 1;
    }
    obs::set_tracing(false);
  }
  const chaos::FaultPlan plan = ablation_plan(7);
  obs::reset_trace();
  {
    rt::ClusterConfig cfg = bench_cfg(max_nodes());
    cfg.fault_plan = &plan;
    cfg.tracing_enabled = true;
    // Attribution needs the whole run retained: a fault injected early in the
    // run must still find its op's kOpBegin at dump time, so size the rings
    // to cover every event instead of keeping only the newest window.
    cfg.trace_ring_events = 1u << 18;
    rt::Cluster cluster(cfg);
    const uint64_t total = elems_per_node() * cluster.num_nodes();
    auto arr = DArray<uint64_t>::create(cluster, total);
    measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
      arr.set(i, i);
      volatile uint64_t v = arr.get(i);
      (void)v;
    });
    const auto snap = cluster.stats();
    std::printf("run done: %llu rnr injections, %llu retries, %llu trace events\n",
                static_cast<unsigned long long>(snap.value_or("chaos.rnr_rejections")),
                static_cast<unsigned long long>(snap.value_or("fabric.retries")),
                static_cast<unsigned long long>(snap.value_or("trace.recorded")));
  }  // cluster (and every recording thread) joined: the rings are quiescent
  obs::set_tracing(false);

  const char* path = "TRACE_chaos_ablation.json";
  if (!obs::dump_trace_json(path)) return 1;
  std::printf("trace dumped to %s\n", path);

  const std::vector<obs::TraceEvent> evs = obs::collect_trace();
  std::unordered_map<uint64_t, const obs::TraceEvent*> begin_of;
  std::unordered_set<uint64_t> retried;
  for (const obs::TraceEvent& e : evs) {
    if (e.ev == obs::Ev::kOpBegin) begin_of[e.corr] = &e;
    if (e.ev == obs::Ev::kRetry && e.corr != 0) retried.insert(e.corr);
  }
  int attributed = 0, printed = 0;
  for (const obs::TraceEvent& e : evs) {
    if (e.ev != obs::Ev::kFault || e.corr == 0) continue;
    if (static_cast<rdma::WcStatus>(e.kind) != rdma::WcStatus::kRnrError) continue;
    if (!retried.count(e.corr)) continue;  // faulted but never re-posted (yet)
    const auto it = begin_of.find(e.corr);
    if (it == begin_of.end()) continue;  // origin wrapped out of its ring
    ++attributed;
    if (printed < 5) {
      const obs::TraceEvent& b = *it->second;
      std::printf("  rnr on node %u (peer %u, wr %llu) <- %s(index %llu) on node %u "
                  "[corr %llx]\n",
                  e.node, e.a, static_cast<unsigned long long>(e.b),
                  obs::op_kind_name(static_cast<obs::OpKind>(b.kind)),
                  static_cast<unsigned long long>(b.b), b.node,
                  static_cast<unsigned long long>(e.corr));
      ++printed;
    }
  }
  std::printf("%d injected RNR retr%s attributed to originating DArray ops\n", attributed,
              attributed == 1 ? "y" : "ies");
  return attributed > 0 ? 0 : 1;
}

// Shared by the modes below: fail fast (and loudly) on a DARRAY_TRACING=0
// build instead of printing empty tables.
bool require_compiled_tracing(const char* mode) {
  if (obs::tracing_enabled()) return true;
  obs::set_tracing(true);
  if (!obs::tracing_enabled()) {
    std::printf("%s: tracing is compiled out (DARRAY_TRACING=0); nothing to do\n", mode);
    return false;
  }
  obs::set_tracing(false);
  return true;
}

// --hist: the seeded chaos workload again, with the op-latency and
// message-class histograms on, printed as HDR-style percentile tables. The
// fault plan is the point: p99/p999 visibly split from p50 under injected
// RNRs and delay spikes, which a mean alone hides.
int hist_main() {
  std::printf("=== Chaos ablation (--hist): latency distributions under faults ===\n");
  if (!require_compiled_tracing("--hist")) return 1;
  const chaos::FaultPlan plan = ablation_plan(7);
  obs::reset_latency_histograms();
  {
    rt::ClusterConfig cfg = bench_cfg(max_nodes());
    cfg.fault_plan = &plan;
    cfg.tracing_enabled = true;
    rt::Cluster cluster(cfg);
    const uint64_t total = elems_per_node() * cluster.num_nodes();
    auto arr = DArray<uint64_t>::create(cluster, total);
    measure_avg_ns(cluster, total, [&](rt::NodeId, uint64_t i) {
      arr.set(i, i);
      volatile uint64_t v = arr.get(i);
      (void)v;
    });
  }
  obs::set_tracing(false);

  std::printf("\nper-op latency (all nodes merged):\n");
  for (uint8_t k = 0; k < static_cast<uint8_t>(obs::OpKind::kMaxOpKind); ++k) {
    const auto kind = static_cast<obs::OpKind>(k);
    const obs::HistogramSnapshot h = obs::op_latency_snapshot(kind);
    if (h.count == 0) continue;
    std::printf("  %-10s %s\n", obs::op_kind_name(kind), h.summary().c_str());
  }
  std::printf("\nper-message-class send latency (staged -> completed):\n");
  for (uint32_t c = 0; c < net::kNumMsgClasses; ++c) {
    const obs::HistogramSnapshot h = obs::msg_class_snapshot(static_cast<uint8_t>(c));
    if (h.count == 0) continue;
    std::printf("  %-14s %s\n", net::msg_class_name(static_cast<uint8_t>(c)),
                h.summary().c_str());
  }
  return 0;
}

// --watchdog: a scheduled 500 ms pause of node 1 stalls a remote get from
// node 0 mid-flight; the slow-op watchdog (100 ms deadline) must report that
// op exactly once, dumping its correlated trace chain to stderr while the op
// is still blocked. Pause windows are relative to the injector's epoch — the
// first WR it sees — and array creation posts no wire traffic, so the stalled
// get's own fetch both pins the epoch and lands inside the [0, 500 ms)
// window: it is held until the window closes, deterministically.
int watchdog_main() {
  std::printf("=== Chaos ablation (--watchdog): slow-op report for a 500 ms stall ===\n");
  if (!require_compiled_tracing("--watchdog")) return 1;

  chaos::FaultPlan plan;
  plan.seed = 1;
  chaos::FaultWindow w;
  w.node = 1;
  w.start_ns = 0;
  w.duration_ns = 500'000'000;
  w.blackhole = false;  // pause: traffic toward node 1 held until close
  plan.windows.push_back(w);

  obs::reset_trace();
  uint64_t reports = 0;
  {
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.fault_plan = &plan;
    cfg.tracing_enabled = true;
    cfg.watchdog_enabled = true;
    cfg.watchdog_deadline_ns = 100'000'000;
    cfg.watchdog_poll_ns = 5'000'000;
    rt::Cluster cluster(cfg);
    const uint64_t total = 2 * elems_per_node();
    auto arr = DArray<uint64_t>::create(cluster, total);
    bind_thread(cluster, 0);

    const uint64_t t0 = now_ns();
    volatile uint64_t v = arr.get(total / 2);  // homed on node 1
    (void)v;
    const uint64_t stall = now_ns() - t0;
    reports = cluster.watchdog_reports();
    std::printf("remote get stalled %.1f ms; watchdog reports: %llu\n",
                static_cast<double>(stall) / 1e6,
                static_cast<unsigned long long>(reports));
  }
  obs::set_tracing(false);
  if (reports != 1) {
    std::printf("FAIL: expected exactly one watchdog report for the stalled op\n");
    return 1;
  }
  std::printf("ok: one correlated chain dumped (stderr) for the injected stall\n");
  return 0;
}

// --serve: live telemetry demo and CI target. The seeded chaos workload runs
// as a continuous flood (one thread per node, random set+get) while the
// embedded listener serves /metrics, /stats.json, /series.json, /slow.json
// and /healthz — point curl, Prometheus, or tools/darray-top at it. A KVS
// serving flood (sync client per node against workers with an artificial
// backend stall) runs alongside the array flood, so the request-journey
// families (darray_stage_latency_ns, /slow.json retained tails) are live
// too. Runs for DARRAY_SERVE_SECONDS (default 30) then drains and exits 0;
// exits 1 if the listener failed to bind (port taken).
int serve_main() {
  const uint64_t secs = env_u64("DARRAY_SERVE_SECONDS", 30);
  std::printf("=== Chaos ablation (--serve): live telemetry under a chaos flood ===\n");

  // Latency percentiles and per-node op counts ride on the traced histograms;
  // a DARRAY_TRACING=0 build still serves every counter family.
  obs::set_tracing(true);
  const bool traced = obs::tracing_enabled();
  obs::set_tracing(false);

  const chaos::FaultPlan plan = ablation_plan(7);
  rt::ClusterConfig cfg = bench_cfg(max_nodes());
  cfg.fault_plan = &plan;
  cfg.tracing_enabled = traced;
  cfg.telemetry_enabled = true;
  cfg.telemetry_sample_ns = env_u64("DARRAY_TELEMETRY_SAMPLE_NS", 100'000'000);
  cfg.telemetry_serve = true;
  cfg.telemetry_port = static_cast<uint16_t>(env_u64("DARRAY_TELEMETRY_PORT", 9464));

  rt::Cluster cluster(cfg);
  if (cluster.telemetry_port() == 0) {
    std::fprintf(stderr, "--serve: listener failed to bind (port %u taken? "
                 "set DARRAY_TELEMETRY_PORT, 0 = ephemeral)\n", cfg.telemetry_port);
    return 1;
  }
  std::printf("serving on http://127.0.0.1:%u  (/metrics  /stats.json  /series.json  "
              "/slow.json  /healthz)\n",
              cluster.telemetry_port());
  std::printf("flood: %u node%s x 1 thread, chaos plan seed-7%s; "
              "%llu s (DARRAY_SERVE_SECONDS)\n",
              cluster.num_nodes(), cluster.num_nodes() == 1 ? "" : "s",
              traced ? "" : " [tracing compiled out: no latency families]",
              static_cast<unsigned long long>(secs));
  std::fflush(stdout);

  const uint64_t total = elems_per_node() * cluster.num_nodes();
  auto arr = DArray<uint64_t>::create(cluster, total);

  // KVS serving plane: workers with an artificial backend stall, journey
  // floor low enough that every stalled request is tail-retained. This is
  // what keeps /slow.json non-empty for the CI scrape.
  serve::ServeConfig scfg;
  scfg.workers_per_node = 2;
  scfg.worker_delay_ns = env_u64("DARRAY_SERVE_WORKER_DELAY_NS", 500'000);
  scfg.journey_slow_floor_ns = env_u64("DARRAY_SERVE_JOURNEY_FLOOR_NS", 250'000);
  serve::KvsService svc = serve::KvsService::create(cluster, kvs::DKvs::create(cluster), scfg);

  std::atomic<bool> stop{false};
  std::vector<std::thread> floods;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    floods.emplace_back([&, n] {
      bind_thread(cluster, n);
      uint64_t x = 0x9e3779b97f4a7c15ull * (n + 1);  // splitmix-ish walk
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        const uint64_t i = x % total;
        arr.set(i, x);
        volatile uint64_t v = arr.get(i);
        (void)v;
      }
    });
  }
  std::vector<std::thread> serve_floods;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    serve_floods.emplace_back([&, n] {
      serve::Client cli = serve::Client::connect(svc, {.node = n});
      uint64_t x = 0x2545f4914f6cdd1dull * (n + 1);
      std::string v;
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        const std::string key = "k" + std::to_string(x % 1024);
        if (x % 8 == 0)
          cli.put(key, "v" + std::to_string(x));
        else
          cli.get(key, v);
      }
    });
  }
  const auto t_end = std::chrono::steady_clock::now() + std::chrono::seconds(secs);
  while (std::chrono::steady_clock::now() < t_end)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : floods) t.join();
  for (auto& t : serve_floods) t.join();

  const auto snap = cluster.stats();
  const auto& jc = obs::journey_collector();
  std::printf("done: %llu http requests, %llu telemetry samples, "
              "%llu remote reqs, %llu injected faults recovered\n",
              static_cast<unsigned long long>(snap.value_or("telemetry.requests")),
              static_cast<unsigned long long>(snap.value_or("telemetry.samples")),
              static_cast<unsigned long long>(snap.value_or("runtime.remote_reqs")),
              static_cast<unsigned long long>(snap.value_or("fabric.retries")));
  std::printf("journeys: %llu completed, %llu retained (threshold %llu ns)\n",
              static_cast<unsigned long long>(jc.completed()),
              static_cast<unsigned long long>(jc.retained()),
              static_cast<unsigned long long>(jc.threshold_ns()));
  svc.shutdown();
  obs::set_tracing(false);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--trace")) return trace_main();
  if (has_flag(argc, argv, "--hist")) return hist_main();
  if (has_flag(argc, argv, "--watchdog")) return watchdog_main();
  if (has_flag(argc, argv, "--serve")) return serve_main();
  std::printf("=== Chaos ablation: seq set+get under seeded fault plans ===\n");
  std::printf("array: %llu elems/node, %u nodes, 1 thread/node\n",
              static_cast<unsigned long long>(elems_per_node()), max_nodes());

  const chaos::FaultPlan p1 = ablation_plan(1), p7 = ablation_plan(7), p42 = ablation_plan(42);
  Sample rows[] = {
      run_case("off", nullptr),
      run_case("seed-1", &p1),
      run_case("seed-7", &p7),
      run_case("seed-42", &p42),
  };

  std::printf("\n%-10s%12s%12s%12s%10s%12s%12s%12s\n", "plan", "ns/op", "wc_errors",
              "rnr_events", "retries", "flushed_wrs", "coalesced", "batchposts");
  for (const Sample& r : rows) {
    std::printf("%-10s%12.1f%12llu%12llu%10llu%12llu%12llu%12llu\n", r.label.c_str(),
                r.ns_per_op,
                static_cast<unsigned long long>(r.stats.wc_errors),
                static_cast<unsigned long long>(r.stats.rnr_events),
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.flushed_wrs),
                static_cast<unsigned long long>(r.stats.coalesced_frames),
                static_cast<unsigned long long>(r.stats.batched_posts));
  }

  std::printf("\nexpected shape: 'off' row all-zero counters at baseline latency;\n"
              "seeded rows show nonzero faults with bounded latency inflation.\n");
  return 0;
}
