// Figure 15: DArray vs DArray-Pin sequential 8-byte read throughput as the
// node count grows (one thread per node).
//
// Paper shape: DArray-Pin outperforms DArray by 1.8x–2.9x — the pin holds the
// chunk reference once, eliminating the per-access atomics of the fast path.
#include "bench/bench_util.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

double run(uint32_t nodes, bool use_pin) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  auto arr = DArray<uint64_t>::create(cluster, total);
  const uint32_t chunk = arr.meta().chunk_elems;
  return measure_mops(cluster, 1, total, [&](rt::NodeId, uint32_t, uint64_t i) {
    if (use_pin && i % chunk == 0) {
      if (i > 0) arr.unpin(i - chunk);
      arr.pin(i, PinMode::kRead);
    }
    volatile uint64_t v = arr.get(i);
    (void)v;
    if (use_pin && i + 1 == total) arr.unpin(i - i % chunk);
  });
}

}  // namespace

int main() {
  std::vector<uint64_t> node_counts;
  for (uint64_t n = 1; n <= max_nodes(); ++n) node_counts.push_back(n);

  std::printf("=== Figure 15: sequential 8B read throughput, DArray vs DArray-Pin "
              "(Mops/s, 1 thread/node) ===\n");
  print_header("", {"nodes", "DArray", "DArray-Pin", "speedup"});
  for (uint64_t n : node_counts) {
    const double plain = run(static_cast<uint32_t>(n), false);
    const double pin = run(static_cast<uint32_t>(n), true);
    print_row(n, {plain, pin, pin / plain}, "%14.3f");
  }
  std::printf("\nexpected shape: Pin speedup in the 1.5x-3x band at every node count "
              "(paper: 1.8x-2.9x).\n");
  return 0;
}
