// Figure 18 (limitations): average latency of uniformly RANDOM (a) Read
// (b) Write (c) Operate as the node count grows — the poor-locality regime
// where DArray's cache stops helping.
//
// Paper shape: on one node DArray ≈ BCL and beats GAM (lock-free path); as
// nodes grow, BCL stays flat at the RDMA round trip while DArray/GAM climb
// above it (coherence protocol + eviction overhead on cache-hostile access),
// with random writes costlier than reads.
#include <map>
#include <span>

#include "bench/bench_util.hpp"
#include "baselines/bcl/bcl_array.hpp"
#include "baselines/gam/gam_array.hpp"
#include "common/rng.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

void add_fn(uint64_t& a, uint64_t b) { a += b; }
uint64_t add_fn_gam(uint64_t a, uint64_t b) { return a + b; }

enum class Op { kRead, kWrite, kOperate };

std::vector<std::vector<uint64_t>> random_streams(uint32_t nodes, uint64_t total,
                                                  uint64_t ops) {
  std::vector<std::vector<uint64_t>> idx(nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    Xoshiro256 rng(77 + n);
    idx[n].reserve(ops);
    for (uint64_t i = 0; i < ops; ++i) idx[n].push_back(rng.next_below(total));
  }
  return idx;
}

double run(const std::string& sys, uint32_t nodes, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  const uint64_t ops = env_u64("DARRAY_BENCH_RAND_OPS", 3000);
  const auto idx = random_streams(nodes, total, ops);

  if (sys == "darray") {
    auto arr = DArray<uint64_t>::create(cluster, total);
    const auto add = arr.register_op(&add_fn, 0);
    return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
      const uint64_t k = idx[n][i];
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(k);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(k, i); break;
        case Op::kOperate: arr.apply(k, add, 1); break;
      }
    });
  }
  if (sys == "gam") {
    auto arr = gam::GamArray<uint64_t>::create(cluster, total);
    return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
      const uint64_t k = idx[n][i];
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(k);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(k, i); break;
        case Op::kOperate: arr.atomic_rmw(k, &add_fn_gam, 1); break;
      }
    });
  }
  auto arr = bcl::BclArray<uint64_t>::create(cluster, total);
  return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
    const uint64_t k = idx[n][i];
    if (op == Op::kRead) {
      volatile uint64_t v = arr.get(k);
      (void)v;
    } else {
      arr.set(k, i);
    }
  });
}

void panel(const char* title, Op op, const std::vector<uint64_t>& node_counts) {
  const bool has_bcl = op != Op::kOperate;
  print_header(title, has_bcl ? std::vector<std::string>{"nodes", "DArray", "GAM", "BCL"}
                              : std::vector<std::string>{"nodes", "DArray", "GAM"});
  for (uint64_t n : node_counts) {
    std::vector<double> row{run("darray", static_cast<uint32_t>(n), op),
                            run("gam", static_cast<uint32_t>(n), op)};
    if (has_bcl) row.push_back(run("bcl", static_cast<uint32_t>(n), op));
    print_row(n, row, "%14.0f");
  }
}

// --- --sweep / --json: runtime-level bulk range sweep ------------------------
// get_range bandwidth + p99 vs extent size over a two-node cluster with
// 128 KiB chunks (16384 × 8 B), large enough that every remote chunk fill
// rides the engine's protocol choice (docs/perf.md): staged frames when
// rendezvous is disabled (the pre-engine "eager" config), one-sided READ
// pulls when enabled. Extents are chunk-aligned and each chunk is read cold
// exactly once, so the numbers are pure remote-fill bandwidth.

constexpr uint32_t kSweepChunkElems = 16384;  // 128 KiB chunks
constexpr uint32_t kSweepMinSize = 4096;
constexpr uint32_t kSweepMaxSize = 4u << 20;

std::vector<uint32_t> sweep_sizes() {
  std::vector<uint32_t> sizes;
  for (uint32_t s = kSweepMinSize; s <= kSweepMaxSize; s *= 4) sizes.push_back(s);
  return sizes;
}

// Chunks consumed per extent and cold-fill iterations per size point: aim
// for ~32 chunk fills per point so every point moves a comparable volume.
uint32_t extent_chunks(uint32_t size) {
  constexpr uint32_t chunk_bytes = kSweepChunkElems * sizeof(uint64_t);
  return (size + chunk_bytes - 1) / chunk_bytes;
}
uint32_t sweep_iters(uint32_t size) {
  return std::max(2u, 32u / extent_chunks(size));
}

// One full pass (fresh cluster, every extent cold): appends one bandwidth
// sample per size and records per-get_range latencies into `hists`.
void sweep_pass(bool rndz, std::map<uint32_t, std::vector<double>>& bw,
                std::map<uint32_t, LatencyHistogram>& hists) {
  const std::vector<uint32_t> sizes = sweep_sizes();
  uint64_t total_chunks = 0;
  for (const uint32_t s : sizes) total_chunks += uint64_t{sweep_iters(s)} * extent_chunks(s);

  rt::ClusterConfig cfg = bench_cfg(2);
  cfg.chunk_elems = kSweepChunkElems;
  cfg.cachelines_per_region = 64;
  cfg.rendezvous_enabled = rndz;
  rt::Cluster cluster(cfg);
  auto arr = DArray<uint64_t>::create(cluster, 2 * total_chunks * kSweepChunkElems);

  // Node 0 seeds its whole subarray home-locally (no traffic); node 1 then
  // walks it one cold chunk-aligned extent at a time.
  std::thread seed([&] {
    bind_thread(cluster, 0);
    std::vector<uint64_t> in(kSweepChunkElems);
    for (uint64_t c = 0; c < total_chunks; ++c) {
      for (uint32_t i = 0; i < kSweepChunkElems; ++i) in[i] = c * kSweepChunkElems + i;
      arr.set_range(c * kSweepChunkElems, std::span<const uint64_t>(in));
    }
  });
  seed.join();
  std::thread read([&] {
    bind_thread(cluster, 1);
    std::vector<uint64_t> out(kSweepMaxSize / sizeof(uint64_t));
    uint64_t next_chunk = 0;
    for (const uint32_t size : sizes) {
      const uint32_t elems = size / sizeof(uint64_t);
      const uint32_t iters = sweep_iters(size);
      const uint64_t t0 = now_ns();
      for (uint32_t it = 0; it < iters; ++it) {
        const uint64_t ts0 = now_ns();
        arr.get_range(next_chunk * kSweepChunkElems, std::span<uint64_t>(out.data(), elems));
        hists[size].record(now_ns() - ts0);
        next_chunk += extent_chunks(size);
      }
      const double secs = static_cast<double>(now_ns() - t0) / 1e9;
      bw[size].push_back(static_cast<double>(iters) * static_cast<double>(size) / secs /
                         1e6);
    }
  });
  read.join();
}

std::string size_tag(uint32_t size) {
  return size >= (1u << 20) ? std::to_string(size >> 20) + "m"
                            : std::to_string(size >> 10) + "k";
}

int sweep_main(bool json) {
  JsonReport report("fig18_random_latency", json);
  const uint32_t reps = json ? bench_reps() : 1;
  std::map<std::string, std::map<uint32_t, std::vector<double>>> bw;
  std::map<std::string, std::map<uint32_t, LatencyHistogram>> hists;
  for (const bool rndz : {false, true}) {
    const std::string cfg = rndz ? "rndz" : "eager";
    for (uint32_t r = 0; r < reps; ++r) sweep_pass(rndz, bw[cfg], hists[cfg]);
  }
  if (!json)
    std::printf("=== fig18 (--sweep): remote get_range bandwidth, eager vs "
                "rendezvous ===\n\n%-10s %14s %14s %14s %14s\n", "size",
                "eager MB/s", "rndz MB/s", "eager p99 ns", "rndz p99 ns");
  for (const uint32_t size : sweep_sizes()) {
    double med[2], p99[2];
    for (const bool rndz : {false, true}) {
      const std::string cfg = rndz ? "rndz" : "eager";
      med[rndz] = report.add(cfg, "range_bw_mbps_" + size_tag(size), "MB/s",
                             bw[cfg][size]);
      p99[rndz] = static_cast<double>(hists[cfg][size].percentile_ns(0.99));
      report.add(cfg, "range_p99_ns_" + size_tag(size), "ns", {p99[rndz]});
    }
    if (!json)
      std::printf("%-10s %14.1f %14.1f %14.0f %14.0f\n", size_tag(size).c_str(),
                  med[0], med[1], p99[0], p99[1]);
  }
  if (json) {
    // A stats block from a small rendezvous-active cluster so the report
    // passes check_bench_report.py's observability requirement.
    rt::ClusterConfig cfg = bench_cfg(2);
    cfg.chunk_elems = kSweepChunkElems;
    rt::Cluster cluster(cfg);
    auto arr = DArray<uint64_t>::create(cluster, 2 * kSweepChunkElems);
    std::thread seed([&] {
      bind_thread(cluster, 0);
      std::vector<uint64_t> in(kSweepChunkElems, 7);
      arr.set_range(0, std::span<const uint64_t>(in));
    });
    seed.join();
    std::thread read([&] {
      bind_thread(cluster, 1);
      std::vector<uint64_t> out(kSweepChunkElems);
      arr.get_range(0, std::span<uint64_t>(out));
    });
    read.join();
    report.set_stats(cluster.stats());
  }
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--json")) return sweep_main(true);
  if (has_flag(argc, argv, "--sweep")) return sweep_main(false);
  std::vector<uint64_t> node_counts;
  for (uint64_t n = 1; n <= max_nodes(); ++n) node_counts.push_back(n);

  std::printf("=== Figure 18: random access latency (ns/op, 1 thread/node) ===\n");
  panel("(a) Read", Op::kRead, node_counts);
  panel("(b) Write", Op::kWrite, node_counts);
  panel("(c) Operate", Op::kOperate, node_counts);
  std::printf("\nexpected shape: single-node DArray <= BCL < GAM; multi-node BCL stays "
              "near the fabric round trip while DArray/GAM rise above it; writes cost "
              "more than reads.\n");
  return 0;
}
