// Figure 18 (limitations): average latency of uniformly RANDOM (a) Read
// (b) Write (c) Operate as the node count grows — the poor-locality regime
// where DArray's cache stops helping.
//
// Paper shape: on one node DArray ≈ BCL and beats GAM (lock-free path); as
// nodes grow, BCL stays flat at the RDMA round trip while DArray/GAM climb
// above it (coherence protocol + eviction overhead on cache-hostile access),
// with random writes costlier than reads.
#include "bench/bench_util.hpp"
#include "baselines/bcl/bcl_array.hpp"
#include "baselines/gam/gam_array.hpp"
#include "common/rng.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

void add_fn(uint64_t& a, uint64_t b) { a += b; }
uint64_t add_fn_gam(uint64_t a, uint64_t b) { return a + b; }

enum class Op { kRead, kWrite, kOperate };

std::vector<std::vector<uint64_t>> random_streams(uint32_t nodes, uint64_t total,
                                                  uint64_t ops) {
  std::vector<std::vector<uint64_t>> idx(nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    Xoshiro256 rng(77 + n);
    idx[n].reserve(ops);
    for (uint64_t i = 0; i < ops; ++i) idx[n].push_back(rng.next_below(total));
  }
  return idx;
}

double run(const std::string& sys, uint32_t nodes, Op op) {
  rt::Cluster cluster(bench_cfg(nodes));
  const uint64_t total = elems_per_node() * nodes;
  const uint64_t ops = env_u64("DARRAY_BENCH_RAND_OPS", 3000);
  const auto idx = random_streams(nodes, total, ops);

  if (sys == "darray") {
    auto arr = DArray<uint64_t>::create(cluster, total);
    const auto add = arr.register_op(&add_fn, 0);
    return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
      const uint64_t k = idx[n][i];
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(k);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(k, i); break;
        case Op::kOperate: arr.apply(k, add, 1); break;
      }
    });
  }
  if (sys == "gam") {
    auto arr = gam::GamArray<uint64_t>::create(cluster, total);
    return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
      const uint64_t k = idx[n][i];
      switch (op) {
        case Op::kRead: {
          volatile uint64_t v = arr.get(k);
          (void)v;
          break;
        }
        case Op::kWrite: arr.set(k, i); break;
        case Op::kOperate: arr.atomic_rmw(k, &add_fn_gam, 1); break;
      }
    });
  }
  auto arr = bcl::BclArray<uint64_t>::create(cluster, total);
  return measure_avg_ns(cluster, ops, [&](rt::NodeId n, uint64_t i) {
    const uint64_t k = idx[n][i];
    if (op == Op::kRead) {
      volatile uint64_t v = arr.get(k);
      (void)v;
    } else {
      arr.set(k, i);
    }
  });
}

void panel(const char* title, Op op, const std::vector<uint64_t>& node_counts) {
  const bool has_bcl = op != Op::kOperate;
  print_header(title, has_bcl ? std::vector<std::string>{"nodes", "DArray", "GAM", "BCL"}
                              : std::vector<std::string>{"nodes", "DArray", "GAM"});
  for (uint64_t n : node_counts) {
    std::vector<double> row{run("darray", static_cast<uint32_t>(n), op),
                            run("gam", static_cast<uint32_t>(n), op)};
    if (has_bcl) row.push_back(run("bcl", static_cast<uint32_t>(n), op));
    print_row(n, row, "%14.0f");
  }
}

}  // namespace

int main() {
  std::vector<uint64_t> node_counts;
  for (uint64_t n = 1; n <= max_nodes(); ++n) node_counts.push_back(n);

  std::printf("=== Figure 18: random access latency (ns/op, 1 thread/node) ===\n");
  panel("(a) Read", Op::kRead, node_counts);
  panel("(b) Write", Op::kWrite, node_counts);
  panel("(c) Operate", Op::kOperate, node_counts);
  std::printf("\nexpected shape: single-node DArray <= BCL < GAM; multi-node BCL stays "
              "near the fabric round trip while DArray/GAM rise above it; writes cost "
              "more than reads.\n");
  return 0;
}
