// Array-compute collectives: chunked dot and row-chunked gemv throughput,
// sweeping the cursor chunk size with comm/compute overlap on and off.
//
// Topology is chosen so the collectives actually stream: the second operand
// (y for dot, x for gemv) is homed entirely on node 0, so every other node
// fetches it across the simulated fabric. Each sample builds a fresh cluster
// and times a single cold pass — a second pass would serve from the coherence
// cache and measure memcpy, not overlap. Engine read-ahead is disabled
// (prefetch_chunks = 0) so the cursor's prefetch window is the only
// difference between the two configs.
//
// Paper shape to reproduce: overlap-on throughput well above overlap-off at
// streaming-friendly chunk sizes (the CI gate wants ≥ 1.3× at the default
// 512), with the gap narrowing at tiny chunks (per-view overheads dominate).
#include "bench/bench_util.hpp"
#include "compute/collectives.hpp"
#include "core/darray.hpp"

using namespace darray;
using namespace darray::bench;

namespace {

const uint32_t kCursorSweep[] = {128, 256, 512, 1024, 2048};

volatile double g_sink;  // keep collective results observable

// Start all nodes together, run fn once per node, return Melem/s of `work`.
double run_collective(rt::Cluster& cluster, uint64_t work_elems,
                      const std::function<void(rt::NodeId)>& fn) {
  const uint32_t nodes = cluster.num_nodes();
  SenseBarrier barrier(nodes);
  std::vector<uint64_t> t0(nodes), t1(nodes);
  std::vector<std::thread> ts;
  for (uint32_t n = 0; n < nodes; ++n) {
    ts.emplace_back([&, n] {
      bind_thread(cluster, n);
      barrier.arrive_and_wait();
      t0[n] = now_ns();
      fn(n);
      t1[n] = now_ns();
    });
  }
  for (auto& t : ts) t.join();
  const uint64_t span = *std::max_element(t1.begin(), t1.end()) -
                        *std::min_element(t0.begin(), t0.end());
  return static_cast<double>(work_elems) / (static_cast<double>(span) / 1e9) / 1e6;
}

rt::ClusterConfig compute_cfg(uint32_t nodes) {
  rt::ClusterConfig cfg = bench_cfg(nodes);
  cfg.prefetch_chunks = 0;  // cursor-driven overlap only, no engine read-ahead
  return cfg;
}

compute::Options cursor_opt(uint32_t cursor_elems, bool overlap) {
  compute::Options opt;
  opt.chunk_elems = cursor_elems;
  opt.overlap = overlap;
  return opt;
}

double dot_melems(uint32_t nodes, uint32_t cursor_elems, bool overlap) {
  rt::ClusterConfig cfg = compute_cfg(nodes);
  rt::Cluster cluster(cfg);
  const uint64_t total =
      elems_per_node() * nodes / cfg.chunk_elems * cfg.chunk_elems;
  auto x = DArray<double>::create(cluster, total);
  std::vector<uint64_t> part(nodes, 0);
  for (uint32_t i = 1; i < nodes; ++i) part[i] = total;  // y: all chunks on node 0
  auto y = DArray<double>::create(cluster, total, part);
  run_collective(cluster, 0, [&](rt::NodeId n) {
    std::vector<double> v;
    for (uint64_t i = x.local_begin(n); i < x.local_end(n); i += cfg.chunk_elems) {
      v.assign(cfg.chunk_elems, 1.0 + static_cast<double>(n));
      x.set_range(i, std::span<const double>(v));
    }
    if (n == 0) {
      v.assign(total, 0.5);
      y.set_range(0, std::span<const double>(v));
    }
  });
  const compute::Options opt = cursor_opt(cursor_elems, overlap);
  return run_collective(cluster, total,
                        [&](rt::NodeId) { g_sink = compute::dot(x, y, opt); });
}

double gemv_melems(uint32_t nodes, uint32_t cursor_elems, bool overlap) {
  rt::ClusterConfig cfg = compute_cfg(nodes);
  rt::Cluster cluster(cfg);
  const uint64_t n_cols = elems_per_node() / cfg.chunk_elems * cfg.chunk_elems;
  const uint64_t rows_per_node = 8;
  const uint64_t n_rows = rows_per_node * nodes;
  auto A = DArray<double>::create(cluster, n_rows * n_cols);  // row-aligned split
  std::vector<uint64_t> part(nodes, 0);
  for (uint32_t i = 1; i < nodes; ++i) part[i] = n_cols;  // x: all on node 0
  auto x = DArray<double>::create(cluster, n_cols, part);
  auto y = DArray<double>::create(cluster, n_rows);
  run_collective(cluster, 0, [&](rt::NodeId n) {
    std::vector<double> row(n_cols, 0.25);
    for (uint64_t i = A.local_begin(n); i < A.local_end(n); i += n_cols)
      A.set_range(i, std::span<const double>(row));
    if (n == 0) x.set_range(0, std::span<const double>(row));
  });
  const compute::Options opt = cursor_opt(cursor_elems, overlap);
  return run_collective(cluster, n_rows * n_cols, [&](rt::NodeId) {
    compute::gemv(1.0, A, x, 0.0, y, n_rows, n_cols, opt);
  });
}

int json_main() {
  JsonReport report("fig_compute", true);
  const uint32_t nodes = max_nodes();
  for (const bool overlap : {false, true}) {
    const std::string cfg = overlap ? "overlap_on" : "overlap_off";
    for (uint32_t c : kCursorSweep) {
      report.measure(cfg, "dot_melems_c" + std::to_string(c), "Melem/s",
                     [&] { return dot_melems(nodes, c, overlap); });
      report.measure(cfg, "gemv_melems_c" + std::to_string(c), "Melem/s",
                     [&] { return gemv_melems(nodes, c, overlap); });
    }
  }
  // One more instrumented pass so the report carries the compute.* counters.
  {
    rt::Cluster cluster(compute_cfg(nodes));
    const uint64_t total = elems_per_node() * nodes;
    auto x = DArray<double>::create(cluster, total);
    run_collective(cluster, 0, [&](rt::NodeId n) {
      for (uint64_t i = x.local_begin(n); i < x.local_end(n); ++i) x.set(i, 1.0);
    });
    run_collective(cluster, total, [&](rt::NodeId) { g_sink = compute::dot(x, x); });
    report.set_stats(cluster.stats_registry().snapshot());
  }
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--json")) return json_main();
  const uint32_t nodes = max_nodes();
  std::printf("=== Array-compute collectives: cursor chunk sweep (%u nodes) ===\n", nodes);
  std::printf("remote operand homed on node 0; cold pass per point; Melem/s\n");
  print_header("dot", {"cursor", "overlap_off", "overlap_on", "ratio"});
  for (uint32_t c : kCursorSweep) {
    const double off = dot_melems(nodes, c, false);
    const double on = dot_melems(nodes, c, true);
    print_row(c, {off, on, on / off});
  }
  print_header("gemv", {"cursor", "overlap_off", "overlap_on", "ratio"});
  for (uint32_t c : kCursorSweep) {
    const double off = gemv_melems(nodes, c, false);
    const double on = gemv_melems(nodes, c, true);
    print_row(c, {off, on, on / off});
  }
  return 0;
}
