// Shared plumbing for the figure-reproduction harnesses: environment
// overrides, timed multi-threaded op loops, and paper-style table printing.
//
// Every bench binary honours:
//   DARRAY_BENCH_NODES    max node count for inter-node sweeps (default 4)
//   DARRAY_BENCH_THREADS  max threads/node for intra-node sweeps (default 4)
//   DARRAY_BENCH_ELEMS    array elements per node (default 16384)
//   DARRAY_BENCH_SCALE    R-MAT scale for graph benches (default 12)
//   DARRAY_BENCH_LAT_NS   simulated one-way fabric latency (default 1000)
#pragma once

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/histogram.hpp"
#include "core/context.hpp"
#include "runtime/cluster.hpp"

namespace darray::bench {

inline uint64_t env_u64(const char* name, uint64_t def) {
  const char* e = std::getenv(name);
  return e ? std::strtoull(e, nullptr, 10) : def;
}

inline uint32_t max_nodes() { return static_cast<uint32_t>(env_u64("DARRAY_BENCH_NODES", 4)); }
inline uint32_t max_threads() {
  return static_cast<uint32_t>(env_u64("DARRAY_BENCH_THREADS", 4));
}
inline uint64_t elems_per_node() { return env_u64("DARRAY_BENCH_ELEMS", 16384); }
inline uint32_t graph_scale() { return static_cast<uint32_t>(env_u64("DARRAY_BENCH_SCALE", 12)); }

inline rt::ClusterConfig bench_cfg(uint32_t nodes) {
  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.fabric_latency_ns = env_u64("DARRAY_BENCH_LAT_NS", 1000);  // ~2 µs RTT, as the paper
  cfg.cachelines_per_region = 512;
  return cfg;
}

// Runs `op(node, thread, i)` ops_per_thread times on every thread and returns
// aggregate millions of ops per second. Workers self-timestamp around their
// loop (span = max(end) - min(start)): a separate timer thread would park on
// the start barrier and, on an oversubscribed host, only wake after the
// workers already finished.
inline double measure_mops(rt::Cluster& cluster, uint32_t threads_per_node,
                           uint64_t ops_per_thread,
                           const std::function<void(rt::NodeId, uint32_t, uint64_t)>& op) {
  const uint32_t total = cluster.num_nodes() * threads_per_node;
  SenseBarrier barrier(total);
  std::vector<uint64_t> starts(total), ends(total);
  std::vector<std::thread> ts;
  uint32_t slot = 0;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < threads_per_node; ++t, ++slot) {
      ts.emplace_back([&, n, t, slot] {
        bind_thread(cluster, n);
        barrier.arrive_and_wait();
        starts[slot] = now_ns();
        for (uint64_t i = 0; i < ops_per_thread; ++i) op(n, t, i);
        ends[slot] = now_ns();
      });
    }
  }
  for (auto& t : ts) t.join();
  const uint64_t t0 = *std::min_element(starts.begin(), starts.end());
  const uint64_t t1 = *std::max_element(ends.begin(), ends.end());
  const double ops = static_cast<double>(total) * static_cast<double>(ops_per_thread);
  return ops / (static_cast<double>(t1 - t0) / 1e9) / 1e6;
}

// Average per-op latency in nanoseconds for a single-threaded-per-node loop.
inline double measure_avg_ns(rt::Cluster& cluster, uint64_t ops_per_thread,
                             const std::function<void(rt::NodeId, uint64_t)>& op) {
  const double mops = measure_mops(cluster, 1, ops_per_thread,
                                   [&](rt::NodeId n, uint32_t, uint64_t i) { op(n, i); });
  // total ops/s across nodes → per-node op rate → ns per op on one thread
  return 1e3 / (mops / static_cast<double>(cluster.num_nodes()));
}

// --- table printing ----------------------------------------------------------

inline void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s", cols[0].c_str());
  for (size_t i = 1; i < cols.size(); ++i) std::printf("%14s", cols[i].c_str());
  std::printf("\n");
}

inline void print_row(uint64_t x, const std::vector<double>& vals, const char* fmt = "%14.2f") {
  std::printf("%-12llu", static_cast<unsigned long long>(x));
  for (double v : vals) std::printf(fmt, v);
  std::printf("\n");
  std::fflush(stdout);  // long sweeps: show each point as it lands
}

// The paper's scalability ratio: speedup at the largest point divided by the
// resource factor, i.e. (T_max / T_1) / (x_max / x_1).
inline double scalability_ratio(const std::vector<uint64_t>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.front() <= 0) return 0;
  return (ys.back() / ys.front()) / (static_cast<double>(xs.back()) / static_cast<double>(xs.front()));
}

}  // namespace darray::bench
