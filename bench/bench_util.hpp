// Shared plumbing for the figure-reproduction harnesses: environment
// overrides, timed multi-threaded op loops, and paper-style table printing.
//
// Every bench binary honours:
//   DARRAY_BENCH_NODES    max node count for inter-node sweeps (default 4)
//   DARRAY_BENCH_THREADS  max threads/node for intra-node sweeps (default 4)
//   DARRAY_BENCH_ELEMS    array elements per node (default 16384)
//   DARRAY_BENCH_SCALE    R-MAT scale for graph benches (default 12)
//   DARRAY_BENCH_LAT_NS   simulated one-way fabric latency (default 1000)
#pragma once

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/histogram.hpp"
#include "core/context.hpp"
#include "obs/stats_registry.hpp"
#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"

namespace darray::bench {

inline uint64_t env_u64(const char* name, uint64_t def) {
  const char* e = std::getenv(name);
  return e ? std::strtoull(e, nullptr, 10) : def;
}

inline uint32_t max_nodes() { return static_cast<uint32_t>(env_u64("DARRAY_BENCH_NODES", 4)); }
inline uint32_t max_threads() {
  return static_cast<uint32_t>(env_u64("DARRAY_BENCH_THREADS", 4));
}
inline uint64_t elems_per_node() { return env_u64("DARRAY_BENCH_ELEMS", 16384); }
inline uint32_t graph_scale() { return static_cast<uint32_t>(env_u64("DARRAY_BENCH_SCALE", 12)); }

inline rt::ClusterConfig bench_cfg(uint32_t nodes) {
  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.fabric_latency_ns = env_u64("DARRAY_BENCH_LAT_NS", 1000);  // ~2 µs RTT, as the paper
  cfg.cachelines_per_region = 512;
  // Before/after switch for the small-message engine (docs/perf.md): the
  // off-config reproduces the pre-coalescing wire behaviour exactly.
  cfg.coalesce_enabled = env_u64("DARRAY_BENCH_COALESCE", 1) != 0;
  return cfg;
}

// Runs `op(node, thread, i)` ops_per_thread times on every thread and returns
// aggregate millions of ops per second. Workers self-timestamp around their
// loop (span = max(end) - min(start)): a separate timer thread would park on
// the start barrier and, on an oversubscribed host, only wake after the
// workers already finished.
inline double measure_mops(rt::Cluster& cluster, uint32_t threads_per_node,
                           uint64_t ops_per_thread,
                           const std::function<void(rt::NodeId, uint32_t, uint64_t)>& op) {
  const uint32_t total = cluster.num_nodes() * threads_per_node;
  SenseBarrier barrier(total);
  std::vector<uint64_t> starts(total), ends(total);
  std::vector<std::thread> ts;
  uint32_t slot = 0;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < threads_per_node; ++t, ++slot) {
      ts.emplace_back([&, n, t, slot] {
        bind_thread(cluster, n);
        barrier.arrive_and_wait();
        starts[slot] = now_ns();
        for (uint64_t i = 0; i < ops_per_thread; ++i) op(n, t, i);
        ends[slot] = now_ns();
      });
    }
  }
  for (auto& t : ts) t.join();
  const uint64_t t0 = *std::min_element(starts.begin(), starts.end());
  const uint64_t t1 = *std::max_element(ends.begin(), ends.end());
  const double ops = static_cast<double>(total) * static_cast<double>(ops_per_thread);
  return ops / (static_cast<double>(t1 - t0) / 1e9) / 1e6;
}

// Average per-op latency in nanoseconds for a single-threaded-per-node loop.
inline double measure_avg_ns(rt::Cluster& cluster, uint64_t ops_per_thread,
                             const std::function<void(rt::NodeId, uint64_t)>& op) {
  const double mops = measure_mops(cluster, 1, ops_per_thread,
                                   [&](rt::NodeId n, uint32_t, uint64_t i) { op(n, i); });
  // total ops/s across nodes → per-node op rate → ns per op on one thread
  return 1e3 / (mops / static_cast<double>(cluster.num_nodes()));
}

// --- table printing ----------------------------------------------------------

inline void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s", cols[0].c_str());
  for (size_t i = 1; i < cols.size(); ++i) std::printf("%14s", cols[i].c_str());
  std::printf("\n");
}

inline void print_row(uint64_t x, const std::vector<double>& vals, const char* fmt = "%14.2f") {
  std::printf("%-12llu", static_cast<unsigned long long>(x));
  for (double v : vals) std::printf(fmt, v);
  std::printf("\n");
  std::fflush(stdout);  // long sweeps: show each point as it lands
}

// --- machine-readable reports (--json) ---------------------------------------
// `<bench> --json` switches a harness into report mode: each recorded metric
// is repeated DARRAY_BENCH_REPS times (default 3) and the median and p99
// (max, at small rep counts) land in BENCH_<name>.json in the working
// directory, so before/after runs diff mechanically instead of by eyeball.

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

inline uint32_t bench_reps() { return static_cast<uint32_t>(env_u64("DARRAY_BENCH_REPS", 3)); }

class JsonReport {
 public:
  // `name` is the bench binary's short name; disabled reports swallow add()
  // calls so harness code stays unconditional.
  JsonReport(std::string name, bool enabled) : name_(std::move(name)), enabled_(enabled) {}

  // Records a metric measured `reps.size()` times. Returns the median.
  double add(const std::string& config, const std::string& metric, const std::string& unit,
             std::vector<double> reps) {
    std::sort(reps.begin(), reps.end());
    const double median = reps[reps.size() / 2];
    const double p99 = reps[static_cast<size_t>(
        static_cast<double>(reps.size() - 1) * 0.99 + 0.5)];
    if (enabled_) entries_.push_back({config, metric, unit, median, p99, std::move(reps)});
    return median;
  }

  // Runs fn() bench_reps() times and records the samples.
  double measure(const std::string& config, const std::string& metric,
                 const std::string& unit, const std::function<double()>& fn) {
    std::vector<double> reps;
    const uint32_t n = enabled_ ? bench_reps() : 1;
    reps.reserve(n);
    for (uint32_t i = 0; i < n; ++i) reps.push_back(fn());
    return add(config, metric, unit, std::move(reps));
  }

  // Attaches a StatsRegistry snapshot (typically cluster.stats() from the last
  // measured configuration) to the report under a "stats" block, so counter
  // regressions diff alongside the throughput numbers.
  void set_stats(obs::StatsSnapshot snap) {
    if (enabled_) stats_ = std::move(snap);
  }

  // Attaches the telemetry sampler's rings (cluster.timeseries()->collect())
  // from the last measured configuration under a "series" block: how the run
  // *unfolded*, not just where it ended. No-op when telemetry was off.
  void set_series(uint64_t sample_ns, std::vector<obs::TimeSeriesStore::Series> series) {
    if (!enabled_) return;
    series_sample_ns_ = sample_ns;
    series_ = std::move(series);
  }

  // Writes BENCH_<name>.json; returns false (with a message) on I/O failure.
  bool write() const {
    if (!enabled_) return true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "json report: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"reps\": %u,\n", name_.c_str(),
                 bench_reps());
    std::fprintf(f, "  \"stats\": %s,\n", stats_.to_json("  ").c_str());
    if (!series_.empty()) {
      std::fprintf(f, "  \"series\": {\"sample_ns\": %llu, \"metrics\": [\n",
                   static_cast<unsigned long long>(series_sample_ns_));
      for (size_t i = 0; i < series_.size(); ++i) {
        const auto& s = series_[i];
        std::fprintf(f, "    {\"metric\": \"%s\", \"rate\": %s, \"points\": [",
                     s.name.c_str(), s.rate ? "true" : "false");
        for (size_t j = 0; j < s.points.size(); ++j)
          std::fprintf(f, "%s[%llu, %llu]", j ? ", " : "",
                       static_cast<unsigned long long>(s.points[j].t_ns),
                       static_cast<unsigned long long>(s.points[j].value));
        std::fprintf(f, "]}%s\n", i + 1 < series_.size() ? "," : "");
      }
      std::fprintf(f, "  ]},\n");
    }
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"metric\": \"%s\", \"unit\": \"%s\", "
                   "\"median\": %.4f, \"p99\": %.4f, \"samples\": [",
                   e.config.c_str(), e.metric.c_str(), e.unit.c_str(), e.median, e.p99);
      for (size_t j = 0; j < e.reps.size(); ++j)
        std::fprintf(f, "%s%.4f", j ? ", " : "", e.reps[j]);
      std::fprintf(f, "]}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json report: wrote %s (%zu results)\n", path.c_str(), entries_.size());
    return true;
  }

  bool enabled() const { return enabled_; }

 private:
  struct Entry {
    std::string config, metric, unit;
    double median, p99;
    std::vector<double> reps;
  };
  std::string name_;
  bool enabled_;
  std::vector<Entry> entries_;
  obs::StatsSnapshot stats_;
  uint64_t series_sample_ns_ = 0;
  std::vector<obs::TimeSeriesStore::Series> series_;
};

// The paper's scalability ratio: speedup at the largest point divided by the
// resource factor, i.e. (T_max / T_1) / (x_max / x_1).
inline double scalability_ratio(const std::vector<uint64_t>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.front() <= 0) return 0;
  return (ys.back() / ys.front()) / (static_cast<double>(xs.back()) / static_cast<double>(xs.front()));
}

}  // namespace darray::bench
