// darray-prof: offline reader for sampling-profiler dumps produced by
// obs::dump_profile (bench/serve_soak --profile, or any harness calling the
// dump API). Symbolization happened inside the dumping process (the dump
// embeds a dladdr table plus a /proc/self/maps copy), so this tool works on
// any machine.
//
//   darray-prof PROFILE.prof                 totals, per-thread split, top-20
//                                            self/total table
//   darray-prof PROFILE.prof --top N         same with N rows
//   darray-prof PROFILE.prof --collapsed OUT flamegraph-collapsed folded
//                                            stacks ("-" = stdout); feed to
//                                            flamegraph.pl / speedscope
//   darray-prof PROFILE.prof --perfetto OUT  Chrome trace-event JSON with
//                                            stackFrames/samples sampling
//                                            tracks for ui.perfetto.dev
//
// Exit status: 0 on success, 1 on a malformed/unreadable dump.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "prof_report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: darray-prof PROFILE.prof "
                 "[--top N | --collapsed OUT | --perfetto OUT.json]\n");
    return 1;
  }
  profdump::ProfDump d;
  if (!profdump::load(argv[1], d)) return 1;

  if (argc >= 4 && std::strcmp(argv[2], "--collapsed") == 0) {
    if (std::strcmp(argv[3], "-") == 0) {
      profdump::write_collapsed(d, stdout);
      return 0;
    }
    std::FILE* f = std::fopen(argv[3], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "darray-prof: cannot open %s for writing\n", argv[3]);
      return 1;
    }
    profdump::write_collapsed(d, f);
    std::fclose(f);
    return 0;
  }
  if (argc >= 4 && std::strcmp(argv[2], "--perfetto") == 0)
    return profdump::write_perfetto(d, argv[3]) ? 0 : 1;

  size_t topn = 20;
  if (argc >= 4 && std::strcmp(argv[2], "--top") == 0)
    topn = static_cast<size_t>(std::strtoull(argv[3], nullptr, 10));
  profdump::print_report(d, topn);
  return 0;
}
