// darray-top: a terminal dashboard for a live DArray cluster. Polls the
// embedded telemetry listener's /series.json and /stats.json (see
// docs/observability.md) and renders per-node op throughput, remote traffic,
// p50/p99 latency sparklines, the serve-path stage breakdown, service-thread
// duty cycles, coherence transition rates, and chaos fault counters. No
// curses, no deps: plain ANSI escapes and a blocking socket.
//
//   darray-top [--host 127.0.0.1] [--port 9464] [--interval MS]
//              [--frames N] [--once]
//
//   --interval   poll + redraw period in milliseconds (default 1000)
//   --frames N   render N frames then exit 0 (0 = run until ^C)
//   --once       one frame, no screen clearing: CI / piping friendly
//
// Pair with `chaos_ablation --serve`, or any harness that sets
// cfg.telemetry_serve. Exits 1 if the endpoint never answers.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Point {
  uint64_t t = 0;
  uint64_t v = 0;
};
struct Series {
  bool rate = false;
  std::vector<Point> pts;
};
struct Snapshot {
  uint64_t sample_count = 0;
  std::map<std::string, Series> series;
  // Live StatsRegistry values from /stats.json. Point-sample (.gauge /
  // percentile) reads fall back to these when the sampler has not produced
  // enough points yet — a --once frame taken before the second sample would
  // otherwise show no gauges at all.
  std::map<std::string, uint64_t> live;
};

// --- transport ---------------------------------------------------------------

std::string http_get(const std::string& host, uint16_t port, const std::string& target,
                     bool& ok) {
  ok = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos || resp.compare(0, 7, "HTTP/1.") != 0) return {};
  ok = resp.compare(9, 3, "200") == 0;
  return resp.substr(hdr_end + 4);
}

// --- /series.json parsing ----------------------------------------------------
// The producer is TimeSeriesStore::to_json — a fixed shape with no string
// escapes in metric names, so a cursor scan is enough:
//   {"sample_count": N, "series": [
//     {"metric": "...", "rate": true, "points": [[t, v], ...]}, ...]}

uint64_t scan_u64(const std::string& s, size_t& pos) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(s.c_str() + pos, &end, 10);
  pos = static_cast<size_t>(end - s.c_str());
  return v;
}

bool parse_series_json(const std::string& body, Snapshot& out) {
  size_t pos = body.find("\"sample_count\"");
  if (pos == std::string::npos) return false;
  pos = body.find(':', pos);
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < body.size() && body[pos] == ' ') ++pos;
  out.sample_count = scan_u64(body, pos);

  for (;;) {
    pos = body.find("\"metric\"", pos);
    if (pos == std::string::npos) break;
    size_t q0 = body.find('"', body.find(':', pos) + 1);
    if (q0 == std::string::npos) return false;
    size_t q1 = body.find('"', q0 + 1);
    if (q1 == std::string::npos) return false;
    Series ser;
    const std::string name = body.substr(q0 + 1, q1 - q0 - 1);

    size_t rpos = body.find("\"rate\"", q1);
    if (rpos == std::string::npos) return false;
    rpos = body.find(':', rpos) + 1;
    while (rpos < body.size() && body[rpos] == ' ') ++rpos;
    ser.rate = body.compare(rpos, 4, "true") == 0;

    size_t ppos = body.find("\"points\"", rpos);
    if (ppos == std::string::npos) return false;
    ppos = body.find('[', ppos);
    if (ppos == std::string::npos) return false;
    ++ppos;  // inside the points array
    for (;;) {
      while (ppos < body.size() &&
             (body[ppos] == ' ' || body[ppos] == ',' || body[ppos] == '\n'))
        ++ppos;
      if (ppos >= body.size() || body[ppos] == ']') break;
      if (body[ppos] != '[') return false;
      ++ppos;
      Point p;
      p.t = scan_u64(body, ppos);
      while (ppos < body.size() && (body[ppos] == ',' || body[ppos] == ' ')) ++ppos;
      p.v = scan_u64(body, ppos);
      while (ppos < body.size() && body[ppos] != ']') ++ppos;
      ++ppos;
      ser.pts.push_back(p);
    }
    out.series.emplace(name, std::move(ser));
    pos = ppos;
  }
  return true;
}

// --- /stats.json parsing -----------------------------------------------------
// StatsSnapshot::to_json is one flat object of "dotted.name": value pairs with
// no escapes in names, so the same cursor-scan style works.

bool parse_stats_json(const std::string& body, std::map<std::string, uint64_t>& out) {
  size_t pos = body.find('{');
  if (pos == std::string::npos) return false;
  for (;;) {
    const size_t q0 = body.find('"', pos);
    if (q0 == std::string::npos) break;
    const size_t q1 = body.find('"', q0 + 1);
    if (q1 == std::string::npos) return false;
    size_t vpos = body.find(':', q1);
    if (vpos == std::string::npos) return false;
    ++vpos;
    while (vpos < body.size() && (body[vpos] == ' ' || body[vpos] == '\n')) ++vpos;
    out[body.substr(q0 + 1, q1 - q0 - 1)] = scan_u64(body, vpos);
    pos = vpos;
  }
  return true;
}

// --- derived values ----------------------------------------------------------

const Series* find(const Snapshot& s, const std::string& name) {
  const auto it = s.series.find(name);
  return it == s.series.end() ? nullptr : &it->second;
}

// A point-sample metric's current value: newest ring point when the sampler
// has one, else the live registry snapshot (fixes empty gauges under --once).
uint64_t point_value(const Snapshot& s, const std::string& name, bool& present) {
  const Series* ser = find(s, name);
  if (ser != nullptr && !ser->pts.empty()) {
    present = true;
    return ser->pts.back().v;
  }
  const auto it = s.live.find(name);
  present = it != s.live.end();
  return present ? it->second : 0;
}

// Per-second rate over the newest interval of a delta (rate) series.
double latest_rate(const Series* s) {
  if (s == nullptr || s->pts.size() < 2) return 0.0;
  const Point& a = s->pts[s->pts.size() - 2];
  const Point& b = s->pts.back();
  if (b.t <= a.t) return 0.0;
  return static_cast<double>(b.v) * 1e9 / static_cast<double>(b.t - a.t);
}

uint64_t window_sum(const Series* s) {
  uint64_t t = 0;
  if (s != nullptr)
    for (const Point& p : s->pts) t += p.v;
  return t;
}

// Unicode block sparkline of the newest `width` values, scaled to their max.
std::string sparkline(const Series* s, size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (s == nullptr || s->pts.empty()) return std::string(width, '.');
  const size_t n = std::min(width, s->pts.size());
  const size_t first = s->pts.size() - n;
  uint64_t hi = 1;
  for (size_t i = first; i < s->pts.size(); ++i) hi = std::max(hi, s->pts[i].v);
  std::string out;
  for (size_t i = 0; i + n < width; ++i) out += ' ';
  for (size_t i = first; i < s->pts.size(); ++i)
    out += kBlocks[(s->pts[i].v * 7 + hi / 2) / hi];
  return out;
}

std::string fmt_si(double v) {
  char buf[32];
  if (v >= 1e9) std::snprintf(buf, sizeof(buf), "%7.2fG", v / 1e9);
  else if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%7.2fM", v / 1e6);
  else if (v >= 1e3) std::snprintf(buf, sizeof(buf), "%7.2fk", v / 1e3);
  else std::snprintf(buf, sizeof(buf), "%7.1f ", v);
  return buf;
}

std::string duty_bar(double frac, size_t width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const size_t fill = static_cast<size_t>(frac * static_cast<double>(width) + 0.5);
  std::string b = "[";
  for (size_t i = 0; i < width; ++i) b += i < fill ? '#' : '.';
  return b + "]";
}

// --- rendering ---------------------------------------------------------------

constexpr size_t kSpark = 30;

void render(const Snapshot& snap, const std::string& host, uint16_t port,
            uint64_t frame) {
  const Series* any = nullptr;
  for (const auto& [name, s] : snap.series)
    if (s.pts.size() >= 2) {
      any = &s;
      break;
    }
  double period_ms = 0;
  if (any != nullptr) {
    const Point& a = any->pts[any->pts.size() - 2];
    const Point& b = any->pts.back();
    period_ms = static_cast<double>(b.t - a.t) / 1e6;
  }
  std::printf("darray-top — %s:%u   samples %llu   period %.0f ms   frame %llu\n",
              host.c_str(), port, static_cast<unsigned long long>(snap.sample_count),
              period_ms, static_cast<unsigned long long>(frame));

  // Per-node op throughput (traced API ops) + remote traffic.
  std::printf("\n  %-8s %9s %-*s %9s %9s\n", "node", "ops/s", static_cast<int>(kSpark),
              "history", "remote/s", "fills/s");
  double total_ops = 0, total_remote = 0, total_miss = 0;
  for (uint32_t n = 0; n < 64; ++n) {
    const std::string p = "node." + std::to_string(n) + ".";
    const Series* ops = find(snap, p + "ops");
    if (ops == nullptr) break;
    const double ops_s = latest_rate(ops);
    const double rem_s = latest_rate(find(snap, p + "remote_reqs"));
    total_ops += ops_s;
    total_remote += rem_s;
    total_miss += latest_rate(find(snap, p + "local_misses"));
    std::printf("  node %-3u %s %s %s %s\n", n, fmt_si(ops_s).c_str(),
                sparkline(ops, kSpark).c_str(), fmt_si(rem_s).c_str(),
                fmt_si(latest_rate(find(snap, p + "fills"))).c_str());
  }
  const double local_hits = std::max(1.0, total_ops - total_miss);
  char ratio[32] = "-";
  if (total_ops > 0)
    std::snprintf(ratio, sizeof(ratio), "%.3f", total_remote / local_hits);
  std::printf("  cluster  %s ops/s   remote:local %s  (%.0f%% of ops miss local cache)\n",
              fmt_si(total_ops).c_str(), ratio,
              total_ops > 0 ? 100.0 * total_miss / total_ops : 0.0);

  // Tx byte-level traffic split by transport path: eager SEND headers, eager
  // zero-copy WRITE payloads, and rendezvous READ pulls. Rates are B/s.
  double tx_send = 0, tx_write = 0, tx_rndz = 0;
  for (uint32_t n = 0; n < 64; ++n) {
    const std::string p = "node." + std::to_string(n) + ".";
    const Series* s = find(snap, p + "tx_send_bytes");
    if (s == nullptr && find(snap, p + "ops") == nullptr) break;
    tx_send += latest_rate(s);
    tx_write += latest_rate(find(snap, p + "tx_write_bytes"));
    tx_rndz += latest_rate(find(snap, p + "tx_rndz_bytes"));
  }
  const double tx_total = tx_send + tx_write + tx_rndz;
  std::printf("  tx B/s   send %s  write %s  rndz %s  (%.0f%% of bytes via rendezvous)\n",
              fmt_si(tx_send).c_str(), fmt_si(tx_write).c_str(), fmt_si(tx_rndz).c_str(),
              tx_total > 0 ? 100.0 * tx_rndz / tx_total : 0.0);
  const double rndz_started = latest_rate(find(snap, "net.rndz.started"));
  const double rndz_fall = latest_rate(find(snap, "net.rndz.fallbacks"));
  if (rndz_started > 0 || rndz_fall > 0)
    std::printf("  rndz/s   started %s  completed %s  fallbacks %s\n",
                fmt_si(rndz_started).c_str(),
                fmt_si(latest_rate(find(snap, "net.rndz.completed"))).c_str(),
                fmt_si(rndz_fall).c_str());

  // Client-serving front door (src/serve), when a KvsService is attached.
  const double srv_acc = latest_rate(find(snap, "serve.accepted"));
  const double srv_shed = latest_rate(find(snap, "serve.shed"));
  const double srv_hot = latest_rate(find(snap, "serve.hot_hits"));
  bool have_inflight = false;
  const uint64_t srv_inflight = point_value(snap, "serve.inflight.gauge", have_inflight);
  if (srv_acc > 0 || srv_shed > 0 || have_inflight)
    std::printf("  serve/s  accepted %s  shed %s  hot-hits %s  inflight %llu  (%.0f%% shed)\n",
                fmt_si(srv_acc).c_str(), fmt_si(srv_shed).c_str(),
                fmt_si(srv_hot).c_str(), static_cast<unsigned long long>(srv_inflight),
                srv_acc + srv_shed > 0 ? 100.0 * srv_shed / (srv_acc + srv_shed) : 0.0);

  // Latency percentiles (point series sampled from the op histograms; a frame
  // taken before the sampler's first tick falls back to the live snapshot).
  std::printf("\n  %-8s %9s %-*s %9s %-*s\n", "op", "p50 ns", static_cast<int>(kSpark),
              "", "p99 ns", static_cast<int>(kSpark), "");
  static const char* kOps[] = {"get", "set", "apply", "get_range", "set_range"};
  for (const char* op : kOps) {
    const std::string base = std::string("hist.op.") + op;
    bool h50 = false, h99 = false;
    const uint64_t v50 = point_value(snap, base + ".p50_ns", h50);
    const uint64_t v99 = point_value(snap, base + ".p99_ns", h99);
    if (!h50 && !h99) continue;
    std::printf("  %-8s %s %s %s %s\n", op,
                fmt_si(static_cast<double>(v50)).c_str(),
                sparkline(find(snap, base + ".p50_ns"), kSpark).c_str(),
                fmt_si(static_cast<double>(v99)).c_str(),
                sparkline(find(snap, base + ".p99_ns"), kSpark).c_str());
  }

  // Serve-path stage breakdown (obs v4 request journeys): where one request's
  // end-to-end time goes. Only present while a KvsService handles traffic.
  static const char* kStages[] = {"admit", "queue", "backend", "net", "deliver"};
  bool stage_hdr = false;
  for (const char* st : kStages) {
    const std::string base = std::string("hist.stage.") + st;
    bool h50 = false, h99 = false;
    const uint64_t v50 = point_value(snap, base + ".p50_ns", h50);
    const uint64_t v99 = point_value(snap, base + ".p99_ns", h99);
    if (!h50 && !h99) continue;
    if (!stage_hdr) {
      std::printf("\n  %-8s %9s %-*s %9s %-*s\n", "stage", "p50 ns",
                  static_cast<int>(kSpark), "", "p99 ns", static_cast<int>(kSpark), "");
      stage_hdr = true;
    }
    std::printf("  %-8s %s %s %s %s\n", st,
                fmt_si(static_cast<double>(v50)).c_str(),
                sparkline(find(snap, base + ".p50_ns"), kSpark).c_str(),
                fmt_si(static_cast<double>(v99)).c_str(),
                sparkline(find(snap, base + ".p99_ns"), kSpark).c_str());
  }
  if (stage_hdr) {
    // journey.retained is a counter: the series view holds per-interval
    // deltas (sum the window), the live fallback holds the running total.
    const Series* rser = find(snap, "journey.retained");
    bool hr = false, ht = false;
    const uint64_t retained =
        rser != nullptr ? window_sum(rser) : point_value(snap, "journey.retained", hr);
    const uint64_t thresh = point_value(snap, "journey.threshold_ns.gauge", ht);
    std::printf("  journeys retained %llu  tail threshold %s ns  (GET /slow.json)\n",
                static_cast<unsigned long long>(retained),
                fmt_si(static_cast<double>(thresh)).c_str());
  }

  // Service-thread duty cycles from the busy/idle deltas.
  std::printf("\n  duty   ");
  for (const char* t : {"runtime", "tx", "rx"}) {
    const std::string base = std::string("duty.") + t;
    const double busy = latest_rate(find(snap, base + ".busy_ns"));
    const double idle = latest_rate(find(snap, base + ".idle_ns"));
    const double frac = busy + idle > 0 ? busy / (busy + idle) : 0.0;
    std::printf("%-8s %3.0f%% %s   ", t, frac * 100, duty_bar(frac, 10).c_str());
  }
  std::printf("\n");

  // Coherence transitions and chaos faults: per-second rates this interval,
  // plus totals over the visible ring window.
  std::printf("\n  coherence/s ");
  for (const auto& [name, s] : snap.series) {
    if (name.rfind("coherence.enter_", 0) != 0) continue;
    std::printf(" %s=%s", name.c_str() + sizeof("coherence.enter_") - 1,
                fmt_si(latest_rate(&s)).c_str());
  }
  std::printf("\n  compute/s   ");
  bool compute_seen = false;
  for (const auto& [name, s] : snap.series) {
    if (name.rfind("compute.", 0) != 0) continue;
    compute_seen = true;
    std::printf(" %s=%s", name.c_str() + sizeof("compute.") - 1,
                fmt_si(latest_rate(&s)).c_str());
  }
  if (!compute_seen) std::printf(" (no collectives)");
  std::printf("\n  chaos (window totals)");
  bool chaos_seen = false;
  for (const auto& [name, s] : snap.series) {
    if (name.rfind("chaos.", 0) != 0) continue;
    chaos_seen = true;
    std::printf(" %s=%llu", name.c_str() + sizeof("chaos.") - 1,
                static_cast<unsigned long long>(window_sum(&s)));
  }
  if (!chaos_seen) std::printf(" (no fault plan)");
  std::printf("\n");
  // Sampling profiler (obs v5): sample/signal rates while a session runs and
  // the ring-overwrite rate that says whether the window is still lossless.
  const double prof_samples = latest_rate(find(snap, "profile.samples"));
  const double prof_signals = latest_rate(find(snap, "profile.signals"));
  const double prof_dropped = latest_rate(find(snap, "profile.dropped"));
  if (prof_samples > 0 || prof_signals > 0)
    std::printf("  profile/s   samples %s  signals %s  dropped %s  (GET /profile)\n",
                fmt_si(prof_samples).c_str(), fmt_si(prof_signals).c_str(),
                fmt_si(prof_dropped).c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 9464;
  uint64_t interval_ms = 1000;
  uint64_t frames = 0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--host") host = next();
    else if (a == "--port") port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (a == "--interval") interval_ms = std::strtoull(next(), nullptr, 10);
    else if (a == "--frames") frames = std::strtoull(next(), nullptr, 10);
    else if (a == "--once") { once = true; frames = 1; }
    else {
      std::fprintf(stderr,
                   "usage: darray-top [--host IP] [--port N] [--interval MS] "
                   "[--frames N] [--once]\n");
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  uint64_t frame = 0, failures = 0;
  for (;;) {
    bool ok = false;
    const std::string body = http_get(host, port, "/series.json", ok);
    Snapshot snap;
    if (!ok || !parse_series_json(body, snap)) {
      if (++failures >= 5 || once) {
        std::fprintf(stderr, "darray-top: no telemetry at %s:%u%s\n", host.c_str(), port,
                     once ? "" : " after 5 attempts");
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    failures = 0;
    // Live registry values back point-sample displays until the sampler's
    // ring has data of its own; best-effort.
    bool stats_ok = false;
    const std::string stats_body = http_get(host, port, "/stats.json", stats_ok);
    if (stats_ok) parse_stats_json(stats_body, snap.live);
    ++frame;
    if (!once) std::printf("\x1b[H\x1b[J");  // home + clear below: less flicker
    render(snap, host, port, frame);
    if (frames != 0 && frame >= frames) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
