// darray-trace: offline reader for trace dumps produced by
// obs::dump_trace_json (bench/chaos_ablation --trace, or any harness calling
// the dump API). The dump is line-oriented — one event object per line — so
// this parses with sscanf instead of pulling in a JSON library. Both dump
// format v1 (no ring ids) and v2 (per-ring accounting, "r" per event) load.
//
//   darray-trace TRACE.json                summary: drops, event counts, spans
//   darray-trace TRACE.json --slowest N    top N slowest API op spans
//   darray-trace TRACE.json --corr HEX     every event of one correlation id
//   darray-trace TRACE.json --perfetto OUT Chrome trace-event JSON for
//                                          ui.perfetto.dev (one track per
//                                          thread per node, flow arrows per
//                                          correlation id)
//
// Request-journey dumps (obs v4) use a different line format — the retained
// tail of a serving run, as captured from /slow.json or dump_json:
//
//   darray-trace --journeys SLOW.json                per-stage breakdown table
//   darray-trace --journeys SLOW.json --perfetto OUT stage spans as child
//                                          slices under each journey's parent
//                                          slice, cross-node flow arrows keyed
//                                          by the journey's correlation id
//
// Exit status: 0 on success, 1 on a malformed/unreadable dump.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "prof_report.hpp"

namespace {

using darray::obs::Ev;
using darray::obs::OpKind;

struct Rec {
  uint64_t t = 0;
  uint64_t c = 0;
  std::string ev;
  uint32_t k = 0;
  uint32_t node = 0;
  uint32_t a = 0;
  uint64_t b = 0;
  uint32_t ring = 0;  // 0 for v1 dumps (no per-ring attribution)
};

struct RingInfo {
  uint32_t id = 0;
  uint64_t pushed = 0;
  uint64_t dropped = 0;
};

// Dump-header accounting. v1 carries the totals; v2 adds the per-ring table.
struct DumpInfo {
  int format = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  std::vector<RingInfo> rings;
};

bool parse_dump(const char* path, std::vector<Rec>& out, DumpInfo& info) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "darray-trace: cannot open %s\n", path);
    return false;
  }
  std::string line;
  char chunk[512];
  bool header_done = false;
  auto getline = [&](std::string& l) -> bool {
    l.clear();
    while (std::fgets(chunk, sizeof(chunk), f)) {
      l += chunk;
      if (!l.empty() && l.back() == '\n') return true;
    }
    return !l.empty();
  };
  while (getline(line)) {
    if (!header_done) {
      // The header is the first line; rings lists can make it long, so it is
      // read unbounded above.
      const char* h = std::strstr(line.c_str(), "\"trace_format\":");
      if (h) {
        std::sscanf(h, "\"trace_format\": %d", &info.format);
        if (const char* r = std::strstr(line.c_str(), "\"recorded\":"))
          std::sscanf(r, "\"recorded\": %" SCNu64, &info.recorded);
        if (const char* d = std::strstr(line.c_str(), "\"dropped\":"))
          std::sscanf(d, "\"dropped\": %" SCNu64, &info.dropped);
        for (const char* p = std::strstr(line.c_str(), "{\"id\":"); p != nullptr;
             p = std::strstr(p + 1, "{\"id\":")) {
          RingInfo ri;
          if (std::sscanf(p, "{\"id\": %u, \"pushed\": %" SCNu64 ", \"dropped\": %" SCNu64,
                          &ri.id, &ri.pushed, &ri.dropped) == 3)
            info.rings.push_back(ri);
        }
        header_done = true;
        continue;
      }
    }
    const char* p = std::strstr(line.c_str(), "{\"t\":");
    if (!p) continue;  // closing lines
    Rec r;
    char ev[32] = {0};
    int n = std::sscanf(p,
                        "{\"t\": %" SCNu64 ", \"c\": %" SCNu64
                        ", \"ev\": \"%31[^\"]\", \"k\": %u, \"node\": %u, "
                        "\"a\": %u, \"b\": %" SCNu64 ", \"r\": %u}",
                        &r.t, &r.c, ev, &r.k, &r.node, &r.a, &r.b, &r.ring);
    if (n == 7) r.ring = 0;  // v1 event line (no "r" field)
    if (n != 7 && n != 8) {
      std::fprintf(stderr, "darray-trace: malformed event line: %s", line.c_str());
      std::fclose(f);
      return false;
    }
    r.ev = ev;
    out.push_back(std::move(r));
  }
  std::fclose(f);
  return true;
}

struct Span {
  uint64_t corr = 0;
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint32_t kind = 0;
  uint32_t node = 0;
  uint32_t ring = 0;  // ring of the kOpBegin event
  uint64_t index = 0;
  uint64_t events = 0;  // events carrying this corr, ends included
};

const char* kind_name(uint32_t k) {
  return darray::obs::op_kind_name(static_cast<OpKind>(k));
}

// Pair kOpBegin/kOpEnd per correlation id and count the events in between.
std::vector<Span> build_spans(const std::vector<Rec>& evs) {
  std::unordered_map<uint64_t, Span> by_corr;
  for (const Rec& r : evs) {
    if (r.c == 0) continue;
    Span& s = by_corr[r.c];
    s.corr = r.c;
    s.events++;
    if (r.ev == "op_begin") {
      s.begin_ns = r.t;
      s.kind = r.k;
      s.node = r.node;
      s.ring = r.ring;
      s.index = r.b;
    } else if (r.ev == "op_end") {
      s.end_ns = r.t;
    }
  }
  std::vector<Span> spans;
  spans.reserve(by_corr.size());
  for (auto& [corr, s] : by_corr)
    if (s.begin_ns != 0 && s.end_ns >= s.begin_ns) spans.push_back(s);
  return spans;
}

int cmd_summary(const std::vector<Rec>& evs, const DumpInfo& info) {
  // Drop accounting first: a ring that wrapped overwrote its oldest events,
  // so the retained event list under-represents the recorded traffic. The
  // header totals (and, for v2 dumps, the per-ring table) keep that honest.
  if (info.format != 0) {
    const double drop_pct =
        info.recorded ? 100.0 * static_cast<double>(info.dropped) /
                            static_cast<double>(info.recorded)
                      : 0.0;
    std::printf("recorded %" PRIu64 ", retained %zu, dropped %" PRIu64 " (%.1f%%)\n",
                info.recorded, evs.size(), info.dropped, drop_pct);
    if (info.dropped != 0 && info.format < 2)
      std::printf("  (v1 dump: no per-ring attribution — re-dump with format 2)\n");
  }
  if (!info.rings.empty()) {
    std::printf("\nper-ring:\n  %4s %10s %10s %10s\n", "id", "pushed", "retained",
                "dropped");
    for (const RingInfo& r : info.rings) {
      if (r.pushed == 0) continue;
      std::printf("  %4u %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "%s\n", r.id, r.pushed,
                  r.pushed - r.dropped, r.dropped, r.dropped ? "  <-- wrapped" : "");
    }
  }

  std::map<std::string, uint64_t> counts;
  for (const Rec& r : evs) counts[r.ev]++;
  std::printf("\n%zu events\n\nby type:\n", evs.size());
  for (const auto& [name, n] : counts)
    std::printf("  %-14s %10" PRIu64 "\n", name.c_str(), n);

  const std::vector<Span> spans = build_spans(evs);
  if (spans.empty()) {
    std::printf("\nno complete op spans (begin+end pairs) in the dump\n");
    return 0;
  }
  // Per-op-kind latency: count, mean, max over the completed spans.
  struct Agg {
    uint64_t n = 0, sum = 0, max = 0;
  };
  std::map<std::string, Agg> by_kind;
  for (const Span& s : spans) {
    Agg& a = by_kind[kind_name(s.kind)];
    const uint64_t d = s.end_ns - s.begin_ns;
    a.n++;
    a.sum += d;
    a.max = std::max(a.max, d);
  }
  std::printf("\ncompleted op spans: %zu\n", spans.size());
  std::printf("  %-11s %9s %12s %12s\n", "op", "count", "mean_ns", "max_ns");
  for (const auto& [name, a] : by_kind)
    std::printf("  %-11s %9" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n", name.c_str(), a.n,
                a.sum / a.n, a.max);
  return 0;
}

int cmd_slowest(const std::vector<Rec>& evs, size_t top_n) {
  std::vector<Span> spans = build_spans(evs);
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.end_ns - x.begin_ns > y.end_ns - y.begin_ns;
  });
  if (spans.size() > top_n) spans.resize(top_n);
  std::printf("%-11s %6s %12s %12s %8s  %s\n", "op", "node", "index", "ns", "events",
              "corr");
  for (const Span& s : spans)
    std::printf("%-11s %6u %12" PRIu64 " %12" PRIu64 " %8" PRIu64 "  %" PRIx64 "\n",
                kind_name(s.kind), s.node, s.index, s.end_ns - s.begin_ns, s.events,
                s.corr);
  return 0;
}

int cmd_corr(const std::vector<Rec>& evs, uint64_t corr) {
  uint64_t t0 = 0;
  size_t n = 0;
  for (const Rec& r : evs) {
    if (r.c != corr) continue;
    if (t0 == 0) t0 = r.t;
    std::printf("%+12" PRId64 " ns  %-14s node=%u ring=%u k=%u a=%u b=%" PRIu64 "\n",
                static_cast<int64_t>(r.t - t0), r.ev.c_str(), r.node, r.ring, r.k, r.a,
                r.b);
    ++n;
  }
  if (n == 0) {
    std::fprintf(stderr, "darray-trace: no events with corr %" PRIx64 "\n", corr);
    return 1;
  }
  return 0;
}

// --- Perfetto / Chrome trace-event exporter ----------------------------------
// One process per node (pid = node id, 65535 = "transport": events recorded
// with no node context), one track per trace ring (tid = ring id ≈ recording
// thread). Completed API op spans render as full slices; every other
// corr-carrying event renders as a thin slice so the flow arrows — one chain
// per correlation id, in timestamp order — have something to bind to.

constexpr uint32_t kNoNode = 0xffff;  // obs::kNoTraceNode as parsed

struct TrackKey {
  uint32_t pid;
  uint32_t tid;
  bool operator<(const TrackKey& o) const {
    return pid != o.pid ? pid < o.pid : tid < o.tid;
  }
};

int cmd_perfetto(const std::vector<Rec>& evs, const std::vector<Span>& spans,
                 const char* out_path) {
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "darray-trace: cannot open %s for writing\n", out_path);
    return 1;
  }
  uint64_t t0 = ~0ull;
  for (const Rec& r : evs) t0 = std::min(t0, r.t);
  if (evs.empty()) t0 = 0;
  auto us = [t0](uint64_t t) { return static_cast<double>(t - t0) / 1000.0; };

  std::fprintf(f, "{\"traceEvents\": [\n");
  bool first = true;
  auto emit = [&](const char* fmt, auto... args) {
    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f, fmt, args...);
  };

  // Track metadata: name every process and thread Perfetto will show.
  std::map<TrackKey, bool> tracks;
  for (const Rec& r : evs) tracks[{r.node, r.ring}] = true;
  std::map<uint32_t, bool> pids;
  for (const auto& [k, _] : tracks) pids[k.pid] = true;
  for (const auto& [pid, _] : pids) {
    if (pid == kNoNode)
      emit("{\"ph\": \"M\", \"pid\": %u, \"name\": \"process_name\", "
           "\"args\": {\"name\": \"transport\"}}",
           pid);
    else
      emit("{\"ph\": \"M\", \"pid\": %u, \"name\": \"process_name\", "
           "\"args\": {\"name\": \"node %u\"}}",
           pid, pid);
  }
  for (const auto& [k, _] : tracks)
    emit("{\"ph\": \"M\", \"pid\": %u, \"tid\": %u, \"name\": \"thread_name\", "
         "\"args\": {\"name\": \"ring %u\"}}",
         k.pid, k.tid, k.tid);

  // Completed API op spans: full slices on the issuing thread's track.
  std::unordered_map<uint64_t, const Span*> span_by_corr;
  for (const Span& s : spans) span_by_corr[s.corr] = &s;
  for (const Span& s : spans)
    emit("{\"ph\": \"X\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
         "\"name\": \"%s\", \"cat\": \"op\", "
         "\"args\": {\"corr\": \"%" PRIx64 "\", \"index\": %" PRIu64 "}}",
         s.node, s.ring, us(s.begin_ns),
         std::max(0.001, static_cast<double>(s.end_ns - s.begin_ns) / 1000.0),
         kind_name(s.kind), s.corr, s.index);

  // Everything else: thin slices (corr-carrying, so flows can bind) or
  // instants. Thin-slice duration: up to 1 µs, clipped at the next event on
  // the same track so slices never overlap.
  std::map<TrackKey, std::vector<const Rec*>> by_track;
  for (const Rec& r : evs) by_track[{r.node, r.ring}].push_back(&r);
  struct Anchor {
    uint64_t t;
    uint32_t pid, tid;
  };
  std::unordered_map<uint64_t, std::vector<Anchor>> flow_anchors;
  for (const Span& s : spans)
    flow_anchors[s.corr].push_back({s.begin_ns, s.node, s.ring});
  for (auto& [key, list] : by_track) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Rec* x, const Rec* y) { return x->t < y->t; });
    for (size_t i = 0; i < list.size(); ++i) {
      const Rec& r = *list[i];
      if (r.ev == "op_begin" || r.ev == "op_end") continue;  // covered by spans
      if (r.c == 0) {
        emit("{\"ph\": \"i\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, "
             "\"name\": \"%s\", \"cat\": \"ev\", \"s\": \"t\"}",
             key.pid, key.tid, us(r.t), r.ev.c_str());
        continue;
      }
      uint64_t dur_ns = 1000;
      if (i + 1 < list.size() && list[i + 1]->t > r.t)
        dur_ns = std::min<uint64_t>(dur_ns, list[i + 1]->t - r.t);
      if (dur_ns == 0) dur_ns = 1;
      emit("{\"ph\": \"X\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
           "\"name\": \"%s\", \"cat\": \"ev\", "
           "\"args\": {\"corr\": \"%" PRIx64 "\", \"a\": %u, \"b\": %" PRIu64 "}}",
           key.pid, key.tid, us(r.t), static_cast<double>(dur_ns) / 1000.0,
           r.ev.c_str(), r.c, r.a, r.b);
      flow_anchors[r.c].push_back({r.t, key.pid, key.tid});
    }
  }

  // Flow arrows: one s → t… → f chain per correlation id, in anchor ts order.
  // Each flow event shares its anchor slice's (pid, tid, ts), which is how
  // the Chrome trace format binds an arrow endpoint to a slice.
  size_t flows = 0;
  for (auto& [corr, anchors] : flow_anchors) {
    if (anchors.size() < 2) continue;
    std::stable_sort(anchors.begin(), anchors.end(),
                     [](const Anchor& x, const Anchor& y) { return x.t < y.t; });
    const char* op = "?";
    if (const auto it = span_by_corr.find(corr); it != span_by_corr.end())
      op = kind_name(it->second->kind);
    for (size_t i = 0; i < anchors.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == anchors.size() ? "f" : "t");
      emit("{\"ph\": \"%s\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, "
           "\"name\": \"%s\", \"cat\": \"flow\", \"id\": %" PRIu64 "%s}",
           ph, anchors[i].pid, anchors[i].tid, us(anchors[i].t), op, corr,
           std::strcmp(ph, "f") == 0 ? ", \"bp\": \"e\"" : "");
    }
    ++flows;
  }

  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::fprintf(stderr, "darray-trace: wrote %s (%zu events, %zu spans, %zu flows)\n",
               out_path, evs.size(), spans.size(), flows);
  return 0;
}

// --- request journeys (/slow.json dumps) -------------------------------------
// JourneyCollector::slow_json writes one journey object per line with a fixed
// field order (see src/obs/journey.cpp), so sscanf works here too.

constexpr const char* kStageNames[5] = {"admit", "queue", "backend", "net", "deliver"};

struct Journey {
  uint64_t trace = 0;
  unsigned origin = 0, owner = 0, session = 0, flags = 0;
  uint64_t seq = 0;
  char op[16] = {0};
  char status[24] = {0};
  uint64_t t_submit = 0;
  uint64_t stage[5] = {0, 0, 0, 0, 0};
  uint64_t total = 0;

  int dominant() const {
    int best = -1;
    uint64_t best_ns = 0;
    for (int i = 0; i < 5; ++i)
      if (stage[i] > best_ns) {
        best_ns = stage[i];
        best = i;
      }
    return best;
  }
};

struct JourneyDump {
  uint64_t completed = 0;
  uint64_t retained = 0;
  uint64_t threshold_ns = 0;
  std::vector<Journey> journeys;
};

bool parse_journeys(const char* path, JourneyDump& out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "darray-trace: cannot open %s\n", path);
    return false;
  }
  char line[1024];
  bool header_done = false;
  while (std::fgets(line, sizeof(line), f)) {
    if (!header_done) {
      if (const char* h = std::strstr(line, "\"journeys\":")) {
        if (const char* c = std::strstr(line, "\"completed\":"))
          std::sscanf(c, "\"completed\": %" SCNu64, &out.completed);
        if (const char* r = std::strstr(line, "\"retained\":"))
          std::sscanf(r, "\"retained\": %" SCNu64, &out.retained);
        if (const char* t = std::strstr(line, "\"threshold_ns\":"))
          std::sscanf(t, "\"threshold_ns\": %" SCNu64, &out.threshold_ns);
        header_done = true;
        (void)h;
        continue;
      }
    }
    const char* p = std::strstr(line, "{\"trace\":");
    if (!p) continue;  // closing line
    Journey j;
    char trace_hex[24] = {0};
    const int n = std::sscanf(
        p,
        "{\"trace\": \"%16[0-9a-fA-F]\", \"origin\": %u, \"owner\": %u, \"session\": %u, "
        "\"seq\": %" SCNu64 ", \"op\": \"%15[^\"]\", \"status\": \"%23[^\"]\", "
        "\"flags\": %u, \"t_submit\": %" SCNu64 ", \"admit_ns\": %" SCNu64
        ", \"queue_ns\": %" SCNu64 ", \"backend_ns\": %" SCNu64 ", \"net_ns\": %" SCNu64
        ", \"deliver_ns\": %" SCNu64 ", \"total_ns\": %" SCNu64,
        trace_hex, &j.origin, &j.owner, &j.session, &j.seq, j.op, j.status, &j.flags,
        &j.t_submit, &j.stage[0], &j.stage[1], &j.stage[2], &j.stage[3], &j.stage[4],
        &j.total);
    if (n != 15) {
      std::fprintf(stderr, "darray-trace: malformed journey line: %s", line);
      std::fclose(f);
      return false;
    }
    j.trace = std::strtoull(trace_hex, nullptr, 16);
    out.journeys.push_back(j);
  }
  std::fclose(f);
  return header_done;
}

std::string journey_flags(unsigned flags) {
  if (flags == 0) return "-";
  std::string s;
  if (flags & 1) s += "shed,";
  if (flags & 2) s += "timeout,";
  if (flags & 4) s += "error,";
  if (flags & 8) s += "hot,";
  s.pop_back();
  return s;
}

int cmd_journeys(const JourneyDump& d) {
  std::printf("retained %zu journeys (%" PRIu64 " total retained, %" PRIu64
              " completed, tail threshold %" PRIu64 " ns)\n\n",
              d.journeys.size(), d.retained, d.completed, d.threshold_ns);
  std::printf("%-16s %-4s %-9s %-12s %3s>%-3s %9s %9s %9s %9s %9s %10s  %s\n", "trace",
              "op", "status", "flags", "org", "own", "admit", "queue", "backend", "net",
              "deliver", "total_ns", "dominant");
  uint64_t dom_count[5] = {0};
  for (const Journey& j : d.journeys) {
    const int dom = j.dominant();
    if (dom >= 0) dom_count[dom]++;
    std::printf("%016" PRIx64 " %-4s %-9s %-12s %3u>%-3u %9" PRIu64 " %9" PRIu64
                " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %10" PRIu64 "  %s\n",
                j.trace, j.op, j.status, journey_flags(j.flags).c_str(), j.origin,
                j.owner, j.stage[0], j.stage[1], j.stage[2], j.stage[3], j.stage[4],
                j.total, dom >= 0 ? kStageNames[dom] : "-");
  }
  std::printf("\ndominant stage:");
  for (int i = 0; i < 5; ++i)
    if (dom_count[i])
      std::printf(" %s=%" PRIu64, kStageNames[i], dom_count[i]);
  std::printf("\n");
  return 0;
}

// Perfetto view of the retained tail: per journey, one parent slice on the
// origin node's session track spanning submit → deliver, with the five stage
// spans nested inside it as child slices (Chrome trace viewers nest complete
// events on one track by time containment). The owner-side interval
// (queue + backend) is mirrored onto the owner node's serve track, and a flow
// chain keyed by the journey's correlation id arrows origin → owner → origin —
// loading this next to a --perfetto dump of the same run lines the journeys up
// with the transport events that share those correlation ids.
int cmd_journeys_perfetto(const JourneyDump& d, const char* out_path) {
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "darray-trace: cannot open %s for writing\n", out_path);
    return 1;
  }
  uint64_t t0 = ~0ull;
  for (const Journey& j : d.journeys) t0 = std::min(t0, j.t_submit);
  if (d.journeys.empty()) t0 = 0;
  auto us = [t0](uint64_t t) { return static_cast<double>(t - t0) / 1000.0; };

  std::fprintf(f, "{\"traceEvents\": [\n");
  bool first = true;
  auto emit = [&](const char* fmt, auto... args) {
    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f, fmt, args...);
  };

  // Track metadata. Sessions get their own threads; owner-side work shares
  // one "serve" thread per node (tid 0 — session ids start at 1).
  std::map<TrackKey, bool> tracks;
  for (const Journey& j : d.journeys) {
    tracks[{j.origin, j.session}] = true;
    if (j.stage[1] + j.stage[2] > 0) tracks[{j.owner, 0}] = true;
  }
  std::map<uint32_t, bool> pids;
  for (const auto& [k, _] : tracks) pids[k.pid] = true;
  for (const auto& [pid, _] : pids)
    emit("{\"ph\": \"M\", \"pid\": %u, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"node %u\"}}",
         pid, pid);
  for (const auto& [k, _] : tracks) {
    if (k.tid == 0)
      emit("{\"ph\": \"M\", \"pid\": %u, \"tid\": 0, \"name\": \"thread_name\", "
           "\"args\": {\"name\": \"serve\"}}",
           k.pid);
    else
      emit("{\"ph\": \"M\", \"pid\": %u, \"tid\": %u, \"name\": \"thread_name\", "
           "\"args\": {\"name\": \"session %u\"}}",
           k.pid, k.tid, k.tid);
  }

  size_t flows = 0;
  for (const Journey& j : d.journeys) {
    if (j.total == 0) continue;  // exceptional journey with no deliver stamp
    emit("{\"ph\": \"X\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
         "\"name\": \"%s\", \"cat\": \"journey\", "
         "\"args\": {\"trace\": \"%016" PRIx64 "\", \"seq\": %" PRIu64
         ", \"status\": \"%s\", \"flags\": %u}}",
         j.origin, j.session, us(j.t_submit), static_cast<double>(j.total) / 1000.0,
         j.op, j.trace, j.seq, j.status, j.flags);
    uint64_t cursor = j.t_submit;
    for (int s = 0; s < 5; ++s) {
      if (j.stage[s] == 0) continue;
      emit("{\"ph\": \"X\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
           "\"name\": \"%s\", \"cat\": \"stage\", "
           "\"args\": {\"trace\": \"%016" PRIx64 "\"}}",
           j.origin, j.session, us(cursor), static_cast<double>(j.stage[s]) / 1000.0,
           kStageNames[s], j.trace);
      cursor += j.stage[s];
    }
    const uint64_t owner_ns = j.stage[1] + j.stage[2];
    if (owner_ns == 0) continue;
    const uint64_t owner_t = j.t_submit + j.stage[0];
    emit("{\"ph\": \"X\", \"pid\": %u, \"tid\": 0, \"ts\": %.3f, \"dur\": %.3f, "
         "\"name\": \"serve %s\", \"cat\": \"journey\", "
         "\"args\": {\"trace\": \"%016" PRIx64 "\"}}",
         j.owner, us(owner_t), static_cast<double>(owner_ns) / 1000.0, j.op, j.trace);
    emit("{\"ph\": \"s\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, "
         "\"name\": \"%s\", \"cat\": \"flow\", \"id\": %" PRIu64 "}",
         j.origin, j.session, us(j.t_submit), j.op, j.trace);
    emit("{\"ph\": \"t\", \"pid\": %u, \"tid\": 0, \"ts\": %.3f, "
         "\"name\": \"%s\", \"cat\": \"flow\", \"id\": %" PRIu64 "}",
         j.owner, us(owner_t), j.op, j.trace);
    emit("{\"ph\": \"f\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f, "
         "\"name\": \"%s\", \"cat\": \"flow\", \"id\": %" PRIu64 ", \"bp\": \"e\"}",
         j.origin, j.session, us(j.t_submit + j.total - j.stage[4]), j.op, j.trace);
    ++flows;
  }

  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::fprintf(stderr, "darray-trace: wrote %s (%zu journeys, %zu flows)\n", out_path,
               d.journeys.size(), flows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: darray-trace TRACE.json "
                 "[--slowest N | --corr HEXID | --perfetto OUT.json]\n"
                 "       darray-trace --journeys SLOW.json [--perfetto OUT.json]\n"
                 "       darray-trace --profile PROFILE.prof "
                 "[--collapsed OUT | --perfetto OUT.json]\n");
    return 1;
  }
  if (std::strcmp(argv[1], "--profile") == 0) {
    // Sampling-profiler dumps (obs::dump_profile) share the offline reader
    // with darray-prof; this alias keeps one entry point for all obs dumps.
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: darray-trace --profile PROFILE.prof "
                   "[--collapsed OUT | --perfetto OUT.json]\n");
      return 1;
    }
    profdump::ProfDump pd;
    if (!profdump::load(argv[2], pd)) return 1;
    if (argc >= 5 && std::strcmp(argv[3], "--collapsed") == 0) {
      if (std::strcmp(argv[4], "-") == 0) {
        profdump::write_collapsed(pd, stdout);
        return 0;
      }
      std::FILE* out = std::fopen(argv[4], "w");
      if (out == nullptr) {
        std::fprintf(stderr, "darray-trace: cannot open %s for writing\n", argv[4]);
        return 1;
      }
      profdump::write_collapsed(pd, out);
      std::fclose(out);
      return 0;
    }
    if (argc >= 5 && std::strcmp(argv[3], "--perfetto") == 0)
      return profdump::write_perfetto(pd, argv[4]) ? 0 : 1;
    profdump::print_report(pd, 20);
    return 0;
  }
  if (std::strcmp(argv[1], "--journeys") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: darray-trace --journeys SLOW.json [--perfetto OUT.json]\n");
      return 1;
    }
    JourneyDump dump;
    if (!parse_journeys(argv[2], dump)) return 1;
    if (argc >= 5 && std::strcmp(argv[3], "--perfetto") == 0)
      return cmd_journeys_perfetto(dump, argv[4]);
    return cmd_journeys(dump);
  }
  std::vector<Rec> evs;
  DumpInfo info;
  if (!parse_dump(argv[1], evs, info)) return 1;
  // Dumps are merged/sorted already, but tolerate hand-edited files.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Rec& x, const Rec& y) { return x.t < y.t; });

  if (argc >= 4 && std::strcmp(argv[2], "--slowest") == 0)
    return cmd_slowest(evs, std::strtoull(argv[3], nullptr, 10));
  if (argc >= 4 && std::strcmp(argv[2], "--corr") == 0)
    return cmd_corr(evs, std::strtoull(argv[3], nullptr, 16));
  if (argc >= 4 && std::strcmp(argv[2], "--perfetto") == 0)
    return cmd_perfetto(evs, build_spans(evs), argv[3]);
  return cmd_summary(evs, info);
}
