// darray-trace: offline reader for trace dumps produced by
// obs::dump_trace_json (bench/chaos_ablation --trace, or any harness calling
// the dump API). The dump is line-oriented — one event object per line — so
// this parses with sscanf instead of pulling in a JSON library.
//
//   darray-trace TRACE.json              summary: event counts, span stats
//   darray-trace TRACE.json --slowest N  top N slowest API op spans
//   darray-trace TRACE.json --corr HEX   every event of one correlation id
//
// Exit status: 0 on success, 1 on a malformed/unreadable dump.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace {

using darray::obs::Ev;
using darray::obs::OpKind;

struct Rec {
  uint64_t t = 0;
  uint64_t c = 0;
  std::string ev;
  uint32_t k = 0;
  uint32_t node = 0;
  uint32_t a = 0;
  uint64_t b = 0;
};

bool parse_dump(const char* path, std::vector<Rec>& out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "darray-trace: cannot open %s\n", path);
    return false;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f)) {
    const char* p = std::strstr(line, "{\"t\":");
    if (!p) continue;  // header / closing lines
    Rec r;
    char ev[32] = {0};
    const int n = std::sscanf(p,
                              "{\"t\": %" SCNu64 ", \"c\": %" SCNu64
                              ", \"ev\": \"%31[^\"]\", \"k\": %u, \"node\": %u, "
                              "\"a\": %u, \"b\": %" SCNu64 "}",
                              &r.t, &r.c, ev, &r.k, &r.node, &r.a, &r.b);
    if (n != 7) {
      std::fprintf(stderr, "darray-trace: malformed event line: %s", line);
      std::fclose(f);
      return false;
    }
    r.ev = ev;
    out.push_back(std::move(r));
  }
  std::fclose(f);
  return true;
}

struct Span {
  uint64_t corr = 0;
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint32_t kind = 0;
  uint32_t node = 0;
  uint64_t index = 0;
  uint64_t events = 0;  // events carrying this corr, ends included
};

const char* kind_name(uint32_t k) {
  return darray::obs::op_kind_name(static_cast<OpKind>(k));
}

// Pair kOpBegin/kOpEnd per correlation id and count the events in between.
std::vector<Span> build_spans(const std::vector<Rec>& evs) {
  std::unordered_map<uint64_t, Span> by_corr;
  for (const Rec& r : evs) {
    if (r.c == 0) continue;
    Span& s = by_corr[r.c];
    s.corr = r.c;
    s.events++;
    if (r.ev == "op_begin") {
      s.begin_ns = r.t;
      s.kind = r.k;
      s.node = r.node;
      s.index = r.b;
    } else if (r.ev == "op_end") {
      s.end_ns = r.t;
    }
  }
  std::vector<Span> spans;
  spans.reserve(by_corr.size());
  for (auto& [corr, s] : by_corr)
    if (s.begin_ns != 0 && s.end_ns >= s.begin_ns) spans.push_back(s);
  return spans;
}

int cmd_summary(const std::vector<Rec>& evs) {
  std::map<std::string, uint64_t> counts;
  for (const Rec& r : evs) counts[r.ev]++;
  std::printf("%zu events\n\nby type:\n", evs.size());
  for (const auto& [name, n] : counts)
    std::printf("  %-14s %10" PRIu64 "\n", name.c_str(), n);

  const std::vector<Span> spans = build_spans(evs);
  if (spans.empty()) {
    std::printf("\nno complete op spans (begin+end pairs) in the dump\n");
    return 0;
  }
  // Per-op-kind latency: count, mean, max over the completed spans.
  struct Agg {
    uint64_t n = 0, sum = 0, max = 0;
  };
  std::map<std::string, Agg> by_kind;
  for (const Span& s : spans) {
    Agg& a = by_kind[kind_name(s.kind)];
    const uint64_t d = s.end_ns - s.begin_ns;
    a.n++;
    a.sum += d;
    a.max = std::max(a.max, d);
  }
  std::printf("\ncompleted op spans: %zu\n", spans.size());
  std::printf("  %-11s %9s %12s %12s\n", "op", "count", "mean_ns", "max_ns");
  for (const auto& [name, a] : by_kind)
    std::printf("  %-11s %9" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n", name.c_str(), a.n,
                a.sum / a.n, a.max);
  return 0;
}

int cmd_slowest(const std::vector<Rec>& evs, size_t top_n) {
  std::vector<Span> spans = build_spans(evs);
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.end_ns - x.begin_ns > y.end_ns - y.begin_ns;
  });
  if (spans.size() > top_n) spans.resize(top_n);
  std::printf("%-11s %6s %12s %12s %8s  %s\n", "op", "node", "index", "ns", "events",
              "corr");
  for (const Span& s : spans)
    std::printf("%-11s %6u %12" PRIu64 " %12" PRIu64 " %8" PRIu64 "  %" PRIx64 "\n",
                kind_name(s.kind), s.node, s.index, s.end_ns - s.begin_ns, s.events,
                s.corr);
  return 0;
}

int cmd_corr(const std::vector<Rec>& evs, uint64_t corr) {
  uint64_t t0 = 0;
  size_t n = 0;
  for (const Rec& r : evs) {
    if (r.c != corr) continue;
    if (t0 == 0) t0 = r.t;
    std::printf("%+12" PRId64 " ns  %-14s node=%u k=%u a=%u b=%" PRIu64 "\n",
                static_cast<int64_t>(r.t - t0), r.ev.c_str(), r.node, r.k, r.a, r.b);
    ++n;
  }
  if (n == 0) {
    std::fprintf(stderr, "darray-trace: no events with corr %" PRIx64 "\n", corr);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: darray-trace TRACE.json [--slowest N | --corr HEXID]\n");
    return 1;
  }
  std::vector<Rec> evs;
  if (!parse_dump(argv[1], evs)) return 1;
  // Dumps are merged/sorted already, but tolerate hand-edited files.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Rec& x, const Rec& y) { return x.t < y.t; });

  if (argc >= 4 && std::strcmp(argv[2], "--slowest") == 0)
    return cmd_slowest(evs, std::strtoull(argv[3], nullptr, 10));
  if (argc >= 4 && std::strcmp(argv[2], "--corr") == 0)
    return cmd_corr(evs, std::strtoull(argv[3], nullptr, 16));
  return cmd_summary(evs);
}
