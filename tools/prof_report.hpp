// Shared offline reader for sampling-profiler dumps ("darray_profile v1",
// written by obs::dump_profile). Used by darray-prof and by
// `darray-trace --profile`; header-only so the two tools stay tiny and the
// format knowledge lives in one place.
//
// The dump is line-oriented:
//   darray_profile v1
//   mode <cpu|wall> hz <n> max_frames <n>
//   totals samples <n> dropped <n> signals <n> unattributed <n> rings <n>
//   phase <i> <name>             (profiler phase table)
//   op <i> <name>                (OpKind table)
//   thread <i> tid <t> alive <0|1> name <name>
//   map <raw /proc/self/maps line>
//   sym 0x<pc> <symbol, may contain spaces>
//   stack t<i> p<phase> o<op> n<count> 0x<pc> ...   (leaf first)
//
// Symbols come from the embedded dladdr table (computed inside the dumping
// process — PCs are meaningless across address spaces); PCs the table misses
// fall back to "module+0xoff" via the maps copy, then to bare hex.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace profdump {

struct ThreadInfo {
  uint64_t tid = 0;
  bool alive = false;
  std::string name;
};

struct MapRange {
  uintptr_t lo = 0;
  uintptr_t hi = 0;
  std::string path;
};

struct StackCell {
  uint32_t thread = 0;  // index into ProfDump::threads
  uint32_t phase = 0;
  uint32_t op = 0;  // 0xff = none
  uint64_t count = 0;
  std::vector<uintptr_t> pcs;  // leaf first
};

struct ProfDump {
  std::string mode;
  uint32_t hz = 0;
  uint32_t max_frames = 0;
  uint64_t samples = 0, dropped = 0, signals = 0, unattributed = 0, rings = 0;
  std::vector<std::string> phases;
  std::vector<std::string> ops;
  std::vector<ThreadInfo> threads;
  std::vector<MapRange> maps;
  std::map<uintptr_t, std::string> syms;
  std::vector<StackCell> stacks;
};

inline bool load(const char* path, ProfDump& d) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "prof: cannot open %s\n", path);
    return false;
  }
  char line[4096];
  if (std::fgets(line, sizeof(line), f) == nullptr ||
      std::strncmp(line, "darray_profile v1", 17) != 0) {
    std::fprintf(stderr, "prof: %s is not a darray_profile v1 dump\n", path);
    std::fclose(f);
    return false;
  }
  auto chomp = [](char* s) {
    size_t n = std::strlen(s);
    while (n > 0 && (s[n - 1] == '\n' || s[n - 1] == '\r')) s[--n] = '\0';
  };
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    chomp(line);
    char word[64];
    unsigned long long a = 0, b = 0, c = 0, e = 0, g = 0;
    if (std::sscanf(line, "mode %63s hz %llu max_frames %llu", word, &a, &b) == 3) {
      d.mode = word;
      d.hz = static_cast<uint32_t>(a);
      d.max_frames = static_cast<uint32_t>(b);
    } else if (std::sscanf(line,
                           "totals samples %llu dropped %llu signals %llu "
                           "unattributed %llu rings %llu",
                           &a, &b, &c, &e, &g) == 5) {
      d.samples = a;
      d.dropped = b;
      d.signals = c;
      d.unattributed = e;
      d.rings = g;
    } else if (std::sscanf(line, "phase %llu %63s", &a, word) == 2) {
      if (d.phases.size() <= a) d.phases.resize(a + 1);
      d.phases[a] = word;
    } else if (std::sscanf(line, "op %llu %63s", &a, word) == 2) {
      if (d.ops.size() <= a) d.ops.resize(a + 1);
      d.ops[a] = word;
    } else if (std::strncmp(line, "thread ", 7) == 0) {
      int alive = 0;
      int name_off = -1;
      if (std::sscanf(line, "thread %llu tid %llu alive %d name %n", &a, &b, &alive,
                      &name_off) >= 3 &&
          name_off > 0) {
        if (d.threads.size() <= a) d.threads.resize(a + 1);
        d.threads[a].tid = b;
        d.threads[a].alive = alive != 0;
        d.threads[a].name = line + name_off;
      }
    } else if (std::strncmp(line, "map ", 4) == 0) {
      // "<lo>-<hi> <perms> <off> <dev> <ino> [path]" — executable ranges only.
      unsigned long long lo = 0, hi = 0;
      char perms[8] = {};
      int path_off = -1;
      if (std::sscanf(line + 4, "%llx-%llx %7s %*s %*s %*s %n", &lo, &hi, perms,
                      &path_off) >= 3 &&
          std::strchr(perms, 'x') != nullptr) {
        MapRange m;
        m.lo = static_cast<uintptr_t>(lo);
        m.hi = static_cast<uintptr_t>(hi);
        if (path_off > 0) m.path = line + 4 + path_off;
        d.maps.push_back(std::move(m));
      }
    } else if (std::strncmp(line, "sym ", 4) == 0) {
      unsigned long long pc = 0;
      int off = -1;
      if (std::sscanf(line + 4, "%llx %n", &pc, &off) >= 1 && off > 0)
        d.syms[static_cast<uintptr_t>(pc)] = line + 4 + off;
    } else if (std::strncmp(line, "stack ", 6) == 0) {
      StackCell cell;
      int off = -1;
      if (std::sscanf(line + 6, "t%llu p%llu o%llu n%llu%n", &a, &b, &c, &e, &off) != 4)
        continue;
      cell.thread = static_cast<uint32_t>(a);
      cell.phase = static_cast<uint32_t>(b);
      cell.op = static_cast<uint32_t>(c);
      cell.count = e;
      const char* p = line + 6 + off;
      while (*p != '\0') {
        unsigned long long pc = 0;
        int n = 0;
        if (std::sscanf(p, " 0x%llx%n", &pc, &n) != 1) break;
        cell.pcs.push_back(static_cast<uintptr_t>(pc));
        p += n;
      }
      d.stacks.push_back(std::move(cell));
    }
  }
  std::fclose(f);
  return true;
}

inline std::string basename_of(const std::string& p) {
  const size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

// Embedded dladdr table first, then module+offset from the maps copy, then
// bare hex — mirrors the in-process fallback order.
inline std::string sym_for(const ProfDump& d, uintptr_t pc) {
  if (const auto it = d.syms.find(pc); it != d.syms.end()) return it->second;
  for (const MapRange& m : d.maps) {
    if (pc >= m.lo && pc < m.hi) {
      char buf[320];
      std::snprintf(buf, sizeof buf, "%s+0x%" PRIxPTR,
                    m.path.empty() ? "[anon]" : basename_of(m.path).c_str(), pc - m.lo);
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIxPTR, pc);
  return buf;
}

inline std::string thread_name(const ProfDump& d, uint32_t idx) {
  if (idx < d.threads.size() && !d.threads[idx].name.empty()) return d.threads[idx].name;
  return "t" + std::to_string(idx);
}

inline std::string phase_label(const ProfDump& d, const StackCell& c) {
  std::string p = c.phase < d.phases.size() ? d.phases[c.phase] : "?";
  if (c.op != 0xff && c.op < d.ops.size()) p += ":" + d.ops[c.op];
  return "(" + p + ")";
}

// Flamegraph collapse rules (match obs::profiler_collapsed): no spaces, no
// semicolons inside a frame.
inline std::string sanitize(std::string s) {
  for (char& ch : s) {
    if (ch == ';') ch = ':';
    if (ch == ' ') ch = '\0';
  }
  std::string out;
  out.reserve(s.size());
  for (char ch : s)
    if (ch != '\0') out += ch;
  return out;
}

// One folded line per cell: thread;(phase[:op]);root;...;leaf count
inline void write_collapsed(const ProfDump& d, std::FILE* out) {
  // Per-PC symbol cache: symbolization walks the maps table otherwise.
  std::map<uintptr_t, std::string> cache;
  for (const StackCell& c : d.stacks) {
    std::string lbl = sanitize(thread_name(d, c.thread)) + ";" + phase_label(d, c);
    for (size_t i = c.pcs.size(); i-- > 0;) {  // dump is leaf-first; emit root-first
      auto it = cache.find(c.pcs[i]);
      if (it == cache.end()) it = cache.emplace(c.pcs[i], sanitize(sym_for(d, c.pcs[i]))).first;
      lbl += ";" + it->second;
    }
    std::fprintf(out, "%s %" PRIu64 "\n", lbl.c_str(), c.count);
  }
}

// Top-N table: self = samples with the symbol as leaf, total = samples with
// the symbol anywhere in the stack (counted once per stack).
inline void print_report(const ProfDump& d, size_t topn) {
  std::printf("darray_profile: mode=%s hz=%u max_frames=%u\n", d.mode.c_str(), d.hz,
              d.max_frames);
  std::printf("totals: samples=%" PRIu64 " dropped=%" PRIu64 " signals=%" PRIu64
              " unattributed=%" PRIu64 " rings=%" PRIu64 "\n\n",
              d.samples, d.dropped, d.signals, d.unattributed, d.rings);

  std::map<std::string, uint64_t> per_thread;
  uint64_t total = 0;
  for (const StackCell& c : d.stacks) {
    per_thread[thread_name(d, c.thread)] += c.count;
    total += c.count;
  }
  std::printf("%-18s %10s %7s\n", "thread", "samples", "%");
  for (const auto& [name, n] : per_thread)
    std::printf("%-18s %10" PRIu64 " %6.1f%%\n", name.c_str(), n,
                total != 0 ? 100.0 * static_cast<double>(n) / static_cast<double>(total)
                           : 0.0);
  std::printf("\n");

  std::map<std::string, std::pair<uint64_t, uint64_t>> cells;  // sym -> {self,total}
  std::map<uintptr_t, std::string> cache;
  auto sym_cached = [&](uintptr_t pc) -> const std::string& {
    auto it = cache.find(pc);
    if (it == cache.end()) it = cache.emplace(pc, sym_for(d, pc)).first;
    return it->second;
  };
  for (const StackCell& c : d.stacks) {
    std::map<std::string, bool> seen_leaf;  // sym -> counted as leaf here
    for (size_t i = 0; i < c.pcs.size(); ++i) {
      const std::string& s = sym_cached(c.pcs[i]);
      auto [it, fresh] = seen_leaf.emplace(s, i == 0);
      if (!fresh) continue;  // recursive frame: total counted once per stack
      auto& cell = cells[s];
      if (i == 0) cell.first += c.count;
      cell.second += c.count;
    }
  }
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> rows(cells.begin(),
                                                                          cells.end());
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    if (x.second.first != y.second.first) return x.second.first > y.second.first;
    return x.second.second > y.second.second;
  });
  std::printf("%10s %7s %10s %7s  %s\n", "self", "self%", "total", "total%", "symbol");
  for (size_t i = 0; i < rows.size() && i < topn; ++i) {
    const auto& [sym, st] = rows[i];
    const double den = total != 0 ? static_cast<double>(total) : 1.0;
    std::printf("%10" PRIu64 " %6.1f%% %10" PRIu64 " %6.1f%%  %s\n", st.first,
                100.0 * static_cast<double>(st.first) / den, st.second,
                100.0 * static_cast<double>(st.second) / den, sym.c_str());
  }
}

// Chrome trace-event JSON with the sampling extension: a stackFrames tree and
// one entry in "samples" per recorded backtrace. Aggregated cells carry no
// per-sample timestamps, so samples are respread at the profiling period —
// the flame view (which sums weights) is exact, the timeline is synthetic.
inline bool write_perfetto(const ProfDump& d, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "prof: cannot open %s for writing\n", path);
    return false;
  }
  // Build the frame tree: node key = (parent, symbol).
  std::map<std::pair<uint64_t, std::string>, uint64_t> frame_ids;
  std::vector<std::pair<uint64_t, std::string>> frames;  // id-1 -> {parent, name}
  auto intern = [&](uint64_t parent, const std::string& name) -> uint64_t {
    const auto key = std::make_pair(parent, name);
    const auto it = frame_ids.find(key);
    if (it != frame_ids.end()) return it->second;
    const uint64_t id = frames.size() + 1;
    frame_ids.emplace(key, id);
    frames.push_back(key);
    return id;
  };
  std::map<uintptr_t, std::string> cache;
  struct SampleRow {
    uint32_t tid;
    uint64_t sf;
    uint64_t count;
    std::string phase;
  };
  std::vector<SampleRow> rows;
  for (const StackCell& c : d.stacks) {
    uint64_t sf = intern(0, phase_label(d, c));
    for (size_t i = c.pcs.size(); i-- > 0;) {
      auto it = cache.find(c.pcs[i]);
      if (it == cache.end()) it = cache.emplace(c.pcs[i], sym_for(d, c.pcs[i])).first;
      sf = intern(sf, it->second);
    }
    rows.push_back({c.thread, sf, c.count, phase_label(d, c)});
  }
  auto json_escape = [](const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      if (static_cast<unsigned char>(ch) < 0x20) continue;
      out += ch;
    }
    return out;
  };
  std::fprintf(f, "{\"traceEvents\": [\n");
  for (size_t i = 0; i < d.threads.size(); ++i) {
    std::fprintf(f,
                 "%s{\"ph\": \"M\", \"pid\": 1, \"tid\": %zu, \"name\": "
                 "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                 i == 0 ? "" : ",\n", i + 1, json_escape(thread_name(d, i)).c_str());
  }
  std::fprintf(f, "\n],\n\"stackFrames\": {\n");
  for (size_t i = 0; i < frames.size(); ++i) {
    std::fprintf(f, "%s\"%zu\": {\"name\": \"%s\"", i == 0 ? "" : ",\n", i + 1,
                 json_escape(frames[i].second).c_str());
    if (frames[i].first != 0)
      std::fprintf(f, ", \"parent\": \"%" PRIu64 "\"", frames[i].first);
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n},\n\"samples\": [\n");
  // Synthetic per-thread clocks at the sampling period.
  const double period_us = d.hz != 0 ? 1e6 / d.hz : 1e4;
  std::map<uint32_t, double> clock;
  bool first = true;
  uint64_t next_id = 1;
  for (const SampleRow& r : rows) {
    for (uint64_t k = 0; k < r.count; ++k) {
      double& t = clock[r.tid];
      std::fprintf(f,
                   "%s{\"cpu\": 0, \"tid\": %u, \"ts\": %.1f, \"name\": \"sample\", "
                   "\"sf\": \"%" PRIu64 "\", \"weight\": 1, \"id\": %" PRIu64 "}",
                   first ? "" : ",\n", r.tid + 1, t, r.sf, next_id++);
      t += period_us;
      first = false;
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace profdump
