#!/usr/bin/env python3
"""Validate flamegraph-collapsed folded stacks from the sampling profiler.

The profiler (src/obs/profiler) emits one folded line per aggregated cell:

    <thread>;(<phase>[:op]);<root>;...;<leaf> <count>

This checks what downstream flamegraph tooling (flamegraph.pl, speedscope)
would choke on, plus the repo's own attribution invariants:

  - every line splits into "<frames> <count>" with a positive integer count
    (count split on the LAST space: demangled frames keep no spaces, but
    defend against regressions);
  - frames contain no spaces and no stray semicolon artifacts (empty frames);
  - the first frame is the recording thread, the second the (phase) tag;
  - at least --min-named of the samples (default 90%) sit on named threads
    (anything not "[unnamed]" — rings exist only for registered threads, so
    a miss here means the registration hooks regressed);
  - each --require-symbol SUBSTR appears in at least one stack (CI passes the
    tx drain and dispatcher worker: the serve soak must attribute cycles to
    both by name).

Stdlib only:

    scripts/validate_collapsed.py serve_profile.collapsed \
        --require-symbol tx_main --require-symbol worker_main
"""
import argparse
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path")
    ap.add_argument("--min-samples", type=int, default=1,
                    help="fail when fewer total samples than this (default 1)")
    ap.add_argument("--min-named", type=float, default=0.9,
                    help="minimum fraction of samples on named threads")
    ap.add_argument("--require-symbol", action="append", default=[],
                    help="substring that must appear in some stack frame")
    args = ap.parse_args()

    errors = []
    total = 0
    named = 0
    seen_symbols = set()
    threads = set()
    n_lines = 0

    with open(args.path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            n_lines += 1
            head, sep, count_s = line.rpartition(" ")
            if not sep:
                errors.append(f"line {lineno}: no count field: {line!r}")
                continue
            if not count_s.isdigit() or int(count_s) <= 0:
                errors.append(f"line {lineno}: bad count {count_s!r}")
                continue
            count = int(count_s)
            frames = head.split(";")
            if len(frames) < 2:
                errors.append(f"line {lineno}: need thread and phase frames: {line!r}")
                continue
            bad = [fr for fr in frames if fr == "" or " " in fr]
            if bad:
                errors.append(f"line {lineno}: malformed frames {bad!r}")
                continue
            if not (frames[1].startswith("(") and frames[1].endswith(")")):
                errors.append(f"line {lineno}: second frame is not a (phase) tag: "
                              f"{frames[1]!r}")
                continue
            total += count
            threads.add(frames[0])
            if frames[0] != "[unnamed]":
                named += count
            for fr in frames[2:]:
                seen_symbols.add(fr)

    if n_lines == 0:
        errors.append("no folded lines at all")
    if total < args.min_samples:
        errors.append(f"only {total} samples, need >= {args.min_samples}")
    if total > 0 and named / total < args.min_named:
        errors.append(f"named-thread samples {named}/{total} "
                      f"({named / total:.1%}) below {args.min_named:.0%}")
    for want in args.require_symbol:
        if not any(want in s for s in seen_symbols):
            errors.append(f"required symbol substring {want!r} not in any stack")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        print(f"validate_collapsed: {len(errors)} error(s) in {args.path}",
              file=sys.stderr)
        return 1
    print(f"validate_collapsed: OK — {n_lines} cells, {total} samples, "
          f"{len(threads)} threads ({', '.join(sorted(threads))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
