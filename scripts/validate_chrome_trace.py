#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (darray-trace --perfetto output).

Checks the shape ui.perfetto.dev / chrome://tracing actually require: a
traceEvents list, known phase codes, numeric non-negative timestamps,
durations on complete ("X") events, and well-formed flow chains (every flow
id opens with "s", finishes with "f", and every flow event sits on a named
track). Stdlib only, so the CI job needs nothing beyond python3:

    tools/darray-trace TRACE.json --perfetto out.json
    scripts/validate_chrome_trace.py out.json --require-flow
"""
import argparse
import json
import sys

KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "s", "t", "f", "C", "b", "e", "n"}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--require-flow", action="store_true",
                    help="fail unless at least one flow chain (s -> f) spans "
                         "two distinct tracks (the cross-thread correlation "
                         "arrows are the point of the exporter)")
    args = ap.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    failures = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: no traceEvents list", file=sys.stderr)
        return 1

    tracks = set()   # (pid, tid) seen on any non-metadata event
    named = set()    # (pid, tid) given a thread_name, pid given a process_name
    flows = {}       # flow id -> {"phases": [...], "tracks": set()}
    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            failures.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            failures.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in e:
            failures.append(f"{where} (ph={ph}): missing pid")
            continue
        if ph == "M":
            if e.get("name") == "process_name":
                named.add(e["pid"])
            elif e.get("name") == "thread_name":
                named.add((e["pid"], e.get("tid")))
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            failures.append(f"{where} (ph={ph}): bad ts {ts!r}")
            continue
        tracks.add((e["pid"], e.get("tid")))
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                failures.append(f"{where}: X event with bad dur {dur!r}")
        if ph in ("s", "t", "f"):
            if "id" not in e:
                failures.append(f"{where}: flow event without id")
                continue
            fl = flows.setdefault(e["id"], {"phases": [], "tracks": set()})
            fl["phases"].append(ph)
            fl["tracks"].add((e["pid"], e.get("tid")))

    for pid, tid in tracks:
        if pid not in named:
            failures.append(f"track ({pid}, {tid}): pid has no process_name")
        if (pid, tid) not in named:
            failures.append(f"track ({pid}, {tid}): no thread_name metadata")

    cross_track_flows = 0
    for fid, fl in flows.items():
        phases = fl["phases"]
        if phases.count("s") != 1 or phases.count("f") != 1:
            failures.append(f"flow {fid}: needs exactly one 's' and one 'f', "
                            f"got {phases}")
        elif phases[0] != "s" or phases[-1] != "f":
            failures.append(f"flow {fid}: out of order: {phases}")
        if len(fl["tracks"]) >= 2:
            cross_track_flows += 1

    if args.require_flow and cross_track_flows == 0:
        failures.append("no flow chain spans two distinct tracks "
                        "(--require-flow)")

    if failures:
        for msg in failures[:40]:
            print("FAIL:", msg, file=sys.stderr)
        if len(failures) > 40:
            print(f"... and {len(failures) - 40} more", file=sys.stderr)
        return 1
    print(f"{args.trace}: {len(events)} events, {len(tracks)} tracks, "
          f"{len(flows)} flow chains ({cross_track_flows} cross-track) — ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
