#!/usr/bin/env python3
"""Validate a Prometheus text-format 0.0.4 exposition (the /metrics payload).

Checks what a real scraper would choke on: metric/label name syntax, numeric
sample values, TYPE lines that precede their samples and use known types, no
duplicate series, and — for histograms — le-bucket cumulativity, a +Inf
bucket, and bucket/_count agreement. OpenMetrics exemplar suffixes
(' # {trace_id="..."} value') are validated when present: bucket lines only,
well-formed label set, numeric value no larger than the bucket's le. Stdlib
only, so the CI job needs nothing beyond python3:

    curl -s http://127.0.0.1:9464/metrics > metrics.txt
    scripts/validate_prometheus.py metrics.txt \
        --require darray_fabric_sends_total --require darray_op_latency_ns
"""
import argparse
import math
import re
import sys

METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_RE = re.compile(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"((?:[^\"\\]|\\.)*)\"")
_ONE_LABEL = LABEL_RE.pattern
BODY_RE = re.compile(rf"\s*(?:{_ONE_LABEL}\s*(?:,\s*{_ONE_LABEL}\s*)*)?,?\s*")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, mtype):
    """Strip the per-series suffix so _bucket/_sum/_count map to the family."""
    if mtype == "histogram":
        for suf in HIST_SUFFIXES:
            if name.endswith(suf):
                return name[: -len(suf)]
    return name


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("exposition", help="scraped /metrics payload to validate")
    ap.add_argument("--require", action="append", default=[],
                    metavar="FAMILY",
                    help="fail unless this metric family is present with at "
                         "least one sample (repeatable)")
    args = ap.parse_args()

    with open(args.exposition) as f:
        lines = f.read().splitlines()

    failures = []
    n_exemplars = 0
    types = {}        # family -> declared type
    samples = {}      # family -> sample count
    seen_series = set()
    histograms = {}   # family -> {labelset-sans-le: [(le, value)]}
    hist_scalars = {} # (family, labelset) -> {"sum": v, "count": v}

    for i, line in enumerate(lines, 1):
        where = f"line {i}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            if parts[1] == "TYPE":
                if len(parts) < 4:
                    failures.append(f"{where}: malformed TYPE line: {line!r}")
                    continue
                name, mtype = parts[2], parts[3].strip()
                if not METRIC_RE.fullmatch(name):
                    failures.append(f"{where}: bad metric name {name!r}")
                if mtype not in KNOWN_TYPES:
                    failures.append(f"{where}: unknown type {mtype!r} for {name}")
                if name in samples:
                    failures.append(f"{where}: TYPE for {name} appears after "
                                    "its samples")
                if name in types:
                    failures.append(f"{where}: duplicate TYPE for {name}")
                types[name] = mtype
            continue

        # A sample line: name[{labels}] value [timestamp]
        m = METRIC_RE.match(line)
        if not m:
            failures.append(f"{where}: unparseable sample: {line!r}")
            continue
        name, rest = m.group(0), line[m.end():]
        labels = {}
        if rest.startswith("{"):
            end = rest.find("}")
            if end < 0:
                failures.append(f"{where}: unterminated label set: {line!r}")
                continue
            body = rest[1:end]
            rest = rest[end + 1:]
            if not BODY_RE.fullmatch(body):
                failures.append(f"{where}: malformed label body {body!r}")
            for mm in LABEL_RE.finditer(body):
                if mm.group(1) in labels:
                    failures.append(f"{where}: duplicate label {mm.group(1)!r}")
                labels[mm.group(1)] = mm.group(2)
        fields = rest.split()
        # OpenMetrics exemplar suffix. Splitting on whitespace is fine for
        # this producer: exemplar label values (hex trace ids) carry none.
        exemplar_fields = None
        if "#" in fields:
            h = fields.index("#")
            exemplar_fields = fields[h + 1:]
            fields = fields[:h]
        if not fields:
            failures.append(f"{where}: sample without a value: {line!r}")
            continue
        value = parse_value(fields[0])
        if value is None:
            failures.append(f"{where}: non-numeric value {fields[0]!r}")
            continue
        if exemplar_fields is not None:
            n_exemplars += 1
            if not name.endswith("_bucket"):
                failures.append(f"{where}: exemplar on a non-bucket sample "
                                f"{name}")
            if (not exemplar_fields
                    or not exemplar_fields[0].startswith("{")
                    or not exemplar_fields[0].endswith("}")):
                failures.append(f"{where}: exemplar without a label set: "
                                f"{line!r}")
            else:
                ex_body = exemplar_fields[0][1:-1]
                if not BODY_RE.fullmatch(ex_body):
                    failures.append(f"{where}: malformed exemplar labels "
                                    f"{ex_body!r}")
                ex_val = (parse_value(exemplar_fields[1])
                          if len(exemplar_fields) > 1 else None)
                if ex_val is None:
                    failures.append(f"{where}: exemplar without a numeric "
                                    "value")
                else:
                    le = parse_value(labels.get("le", "x"))
                    if le is not None and ex_val > le:
                        failures.append(f"{where}: exemplar value {ex_val:g} "
                                        f"above its bucket's le={le:g}")

        # Resolve the family (histogram children share their parent's TYPE).
        fam = name
        for candidate in {name} | {name[: -len(s)]
                                   for s in HIST_SUFFIXES if name.endswith(s)}:
            if types.get(candidate) == "histogram":
                fam = candidate
        mtype = types.get(fam)
        if mtype is None:
            failures.append(f"{where}: sample for {name} has no TYPE line")
        samples[fam] = samples.get(fam, 0) + 1

        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            failures.append(f"{where}: duplicate series {name}{labels}")
        seen_series.add(series_key)

        if mtype == "counter" and value < 0:
            failures.append(f"{where}: counter {name} is negative ({value})")
        if mtype == "histogram":
            sub_key = tuple(sorted((k, v) for k, v in labels.items()
                                   if k != "le"))
            if name.endswith("_bucket"):
                le = parse_value(labels.get("le", ""))
                if le is None:
                    failures.append(f"{where}: bucket without a numeric 'le'")
                    continue
                histograms.setdefault(fam, {}).setdefault(
                    sub_key, []).append((le, value))
            elif name.endswith("_sum"):
                hist_scalars.setdefault((fam, sub_key), {})["sum"] = value
            elif name.endswith("_count"):
                hist_scalars.setdefault((fam, sub_key), {})["count"] = value
            else:
                failures.append(f"{where}: histogram family {fam} has a bare "
                                f"sample {name}")

    # Histogram invariants: buckets cumulative and non-decreasing in le order,
    # a +Inf bucket present, and +Inf == _count for the same label set.
    for fam, cells in histograms.items():
        for sub_key, buckets in cells.items():
            tag = f"histogram {fam}{dict(sub_key)}"
            buckets.sort()
            prev = -1.0
            for le, v in buckets:
                if v < prev:
                    failures.append(f"{tag}: bucket le={le:g} count {v:g} "
                                    f"below previous {prev:g} (not cumulative)")
                prev = v
            if not buckets or buckets[-1][0] != math.inf:
                failures.append(f"{tag}: missing the +Inf bucket")
                continue
            scalars = hist_scalars.get((fam, sub_key), {})
            if "count" not in scalars or "sum" not in scalars:
                failures.append(f"{tag}: missing _sum/_count samples")
            elif buckets[-1][1] != scalars["count"]:
                failures.append(f"{tag}: +Inf bucket {buckets[-1][1]:g} != "
                                f"_count {scalars['count']:g}")

    for fam in args.require:
        if samples.get(fam, 0) == 0:
            failures.append(f"required family {fam} has no samples")

    if failures:
        for msg in failures[:40]:
            print("FAIL:", msg, file=sys.stderr)
        if len(failures) > 40:
            print(f"... and {len(failures) - 40} more", file=sys.stderr)
        return 1
    ex_tail = f", {n_exemplars} exemplars" if n_exemplars else ""
    print(f"{args.exposition}: {len(seen_series)} series across "
          f"{len(samples)} families ({len(histograms)} histograms{ex_tail}) "
          "— ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
