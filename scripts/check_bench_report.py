#!/usr/bin/env python3
"""Validate a bench_util --json report.

Checks that the report is well-formed, carries a non-empty StatsRegistry
block (the observability plane is wired into the harness), and — when a
baseline report is given — that throughput metrics have not regressed beyond
a tolerance. Used by the CI bench-smoke job; run it locally the same way:

    bench/micro_fastpath --json report.json
    scripts/check_bench_report.py report.json \
        --baseline BENCH_micro_fastpath.json --tolerance 0.05
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def index_results(report):
    return {(r["config"], r["metric"]): r for r in report.get("results", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="fresh --json report to validate")
    ap.add_argument("--baseline", help="committed report to compare against")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional regression (default 0.05)")
    ap.add_argument("--p99-tolerance", type=float, default=0.25,
                    help="allowed fractional p99 regression when both reports "
                         "carry a p99 (default 0.25; tails are noisier than "
                         "medians, so the gate is wider)")
    ap.add_argument("--require-stats", action="store_true", default=True,
                    help="fail unless the report embeds a non-empty stats block")
    ap.add_argument("--gate-ratio", action="append", default=[],
                    metavar="NUM_CONFIG:DEN_CONFIG:METRIC:MIN",
                    help="require median[NUM_CONFIG][METRIC] >= MIN × "
                         "median[DEN_CONFIG][METRIC] within this report "
                         "(repeatable); e.g. overlap_on:overlap_off:"
                         "dot_melems_c512:1.3 gates the comm/compute overlap "
                         "win of the compute layer")
    ap.add_argument("--gate-min", action="append", default=[],
                    metavar="CONFIG:METRIC:MIN",
                    help="require median[CONFIG][METRIC] >= MIN within this "
                         "report (repeatable); e.g. admission_on:shed_pct:1 "
                         "asserts the overload phase actually shed")
    ap.add_argument("--gate-max", action="append", default=[],
                    metavar="CONFIG:METRIC:MAX",
                    help="require median[CONFIG][METRIC] <= MAX within this "
                         "report (repeatable); e.g. stages:stage_sum_ratio:1.1 "
                         "asserts the journey stages partition end-to-end time")
    args = ap.parse_args()

    report = load(args.report)
    failures = []

    for key in ("bench", "reps", "results"):
        if key not in report:
            failures.append(f"report is missing the '{key}' field")
    if not report.get("results"):
        failures.append("report has no results")

    # The StatsRegistry block: present, a dict, and carrying at least the
    # fabric + runtime counter families.
    stats = report.get("stats")
    if not isinstance(stats, dict) or not stats:
        failures.append("report has no embedded StatsRegistry block "
                        "('stats' missing or empty)")
    else:
        for family in ("fabric.", "runtime."):
            if not any(name.startswith(family) for name in stats):
                failures.append(f"stats block has no {family}* counters")
        bad = [k for k, v in stats.items() if not isinstance(v, int) or v < 0]
        if bad:
            failures.append(f"stats entries are not non-negative ints: {bad}")

    # The telemetry series block is optional — committed BENCH files predate
    # it — but when present it must be coherent: a positive sample period,
    # strictly increasing timestamps per metric, and non-negative values.
    series = report.get("series")
    n_series = 0
    if series is not None:
        if not isinstance(series, dict):
            failures.append("'series' present but not an object")
        else:
            sample_ns = series.get("sample_ns")
            if not isinstance(sample_ns, int) or sample_ns <= 0:
                failures.append(f"series.sample_ns invalid: {sample_ns!r}")
            metrics = series.get("metrics")
            if not isinstance(metrics, list) or not metrics:
                failures.append("series.metrics missing or empty")
                metrics = []
            for m in metrics:
                name = m.get("metric")
                if not isinstance(name, str) or not name:
                    failures.append("series entry without a metric name")
                    continue
                n_series += 1
                if not isinstance(m.get("rate"), bool):
                    failures.append(f"series {name}: missing 'rate' flag")
                pts = m.get("points")
                if not isinstance(pts, list) or not pts:
                    failures.append(f"series {name}: no points")
                    continue
                last_t = -1
                for p in pts:
                    if (not isinstance(p, list) or len(p) != 2
                            or not all(isinstance(x, int) for x in p)):
                        failures.append(f"series {name}: bad point {p!r}")
                        break
                    t, v = p
                    if t <= last_t:
                        failures.append(f"series {name}: timestamps not "
                                        f"strictly increasing at t={t}")
                        break
                    if v < 0:
                        failures.append(f"series {name}: negative value {v} "
                                        f"at t={t}")
                        break
                    last_t = t

    if args.baseline:
        base = index_results(load(args.baseline))
        fresh = index_results(report)
        for key, b in sorted(base.items()):
            f = fresh.get(key)
            if f is None:
                failures.append(f"metric {key} present in baseline but absent "
                                "from the fresh report")
                continue
            if f["unit"] != b["unit"]:
                failures.append(f"metric {key} changed unit: "
                                f"{b['unit']} -> {f['unit']}")
                continue
            # Higher-is-better units regress downward; latency units upward.
            higher_is_better = "/s" in b["unit"]
            bm, fm = float(b["median"]), float(f["median"])
            if bm <= 0:
                continue
            delta = (bm - fm) / bm if higher_is_better else (fm - bm) / bm
            tag = (f"{key[0]}/{key[1]}: baseline {bm:g} {b['unit']}, "
                   f"fresh {fm:g} ({delta:+.1%})")
            if delta > args.tolerance:
                failures.append("REGRESSION " + tag)
            else:
                print("ok " + tag)
            # Tail gate: medians can hold steady while p99 quietly blows up
            # (a stall on the slow path), so the tail is checked separately,
            # with a wider tolerance.
            bp, fp = float(b.get("p99", 0)), float(f.get("p99", 0))
            if bp <= 0 or fp <= 0:
                continue
            p99_delta = (bp - fp) / bp if higher_is_better else (fp - bp) / bp
            p99_tag = (f"{key[0]}/{key[1]} p99: baseline {bp:g} {b['unit']}, "
                       f"fresh {fp:g} ({p99_delta:+.1%})")
            if p99_delta > args.p99_tolerance:
                failures.append("P99 REGRESSION " + p99_tag)
            else:
                print("ok " + p99_tag)

    # Intra-report ratio gates: one config must beat another on the same
    # metric by a floor factor (the overlap-on vs overlap-off ablation).
    if args.gate_ratio:
        fresh = index_results(report)
        for spec in args.gate_ratio:
            parts = spec.split(":")
            if len(parts) != 4:
                failures.append(f"bad --gate-ratio spec {spec!r} "
                                "(want NUM_CONFIG:DEN_CONFIG:METRIC:MIN)")
                continue
            num_cfg, den_cfg, metric, floor = parts
            try:
                floor = float(floor)
            except ValueError:
                failures.append(f"bad --gate-ratio floor in {spec!r}")
                continue
            num = fresh.get((num_cfg, metric))
            den = fresh.get((den_cfg, metric))
            if num is None or den is None:
                missing = num_cfg if num is None else den_cfg
                failures.append(f"gate-ratio {spec}: no result for "
                                f"({missing}, {metric})")
                continue
            nm, dm = float(num["median"]), float(den["median"])
            if dm <= 0:
                failures.append(f"gate-ratio {spec}: denominator median "
                                f"{dm:g} is not positive")
                continue
            ratio = nm / dm
            tag = (f"{metric}: {num_cfg} {nm:g} / {den_cfg} {dm:g} "
                   f"= {ratio:.2f}x (floor {floor:g}x)")
            if ratio < floor:
                failures.append("RATIO GATE " + tag)
            else:
                print("ok " + tag)

    # Absolute floor gates: a config's median must clear a fixed threshold
    # (e.g. the admission-on soak phase must actually shed under overload).
    if args.gate_min:
        fresh = index_results(report)
        for spec in args.gate_min:
            parts = spec.split(":")
            if len(parts) != 3:
                failures.append(f"bad --gate-min spec {spec!r} "
                                "(want CONFIG:METRIC:MIN)")
                continue
            cfg, metric, floor = parts
            try:
                floor = float(floor)
            except ValueError:
                failures.append(f"bad --gate-min floor in {spec!r}")
                continue
            r = fresh.get((cfg, metric))
            if r is None:
                failures.append(f"gate-min {spec}: no result for "
                                f"({cfg}, {metric})")
                continue
            median = float(r["median"])
            tag = f"{cfg}/{metric}: median {median:g} (floor {floor:g})"
            if median < floor:
                failures.append("MIN GATE " + tag)
            else:
                print("ok " + tag)

    # Absolute ceiling gates: the mirror of --gate-min, for metrics that must
    # stay bounded (ratios near 1, error percentages, etc.).
    if args.gate_max:
        fresh = index_results(report)
        for spec in args.gate_max:
            parts = spec.split(":")
            if len(parts) != 3:
                failures.append(f"bad --gate-max spec {spec!r} "
                                "(want CONFIG:METRIC:MAX)")
                continue
            cfg, metric, ceiling = parts
            try:
                ceiling = float(ceiling)
            except ValueError:
                failures.append(f"bad --gate-max ceiling in {spec!r}")
                continue
            r = fresh.get((cfg, metric))
            if r is None:
                failures.append(f"gate-max {spec}: no result for "
                                f"({cfg}, {metric})")
                continue
            median = float(r["median"])
            tag = f"{cfg}/{metric}: median {median:g} (ceiling {ceiling:g})"
            if median > ceiling:
                failures.append("MAX GATE " + tag)
            else:
                print("ok " + tag)

    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        return 1
    tail = (f", series block well-formed ({n_series} metrics)"
            if series is not None else "")
    print(f"report {args.report}: stats block present "
          f"({len(stats)} counters){tail}, all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
